//! A line assembler and program-text parser.
//!
//! Parses the canonical syntax printed by [`Instruction`]'s `Display`
//! implementation, so assembly text round-trips losslessly:
//!
//! ```text
//! ADD x1, x2, x3        ; comment
//! LDR x1, [x10, #8]
//! VFMLA v0, v1, v2
//! CBNZ x4, #2
//! MOVI x0, #0xAAAAAAAAAAAAAAAA
//! ```
//!
//! `;`, `#` at start of line, and `//` comments are supported, matching the
//! flavours found in the paper's template sources.

use crate::instruction::{Instruction, Operand};
use crate::opcode::{Opcode, OperandSlot};
use crate::IsaError;

/// Parses one line of assembly.
///
/// Returns `Ok(None)` for blank lines and comment-only lines.
///
/// # Errors
///
/// Returns [`IsaError::UnknownMnemonic`] or [`IsaError::Syntax`] for
/// unparseable lines and [`IsaError::BadOperands`] when operands do not
/// match the opcode signature.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), gest_isa::IsaError> {
/// let instr = gest_isa::asm::parse_line("FMLA v0, v1, v2")?.expect("instruction");
/// assert_eq!(instr.opcode().mnemonic(), "FMLA");
/// assert!(gest_isa::asm::parse_line("; just a comment")?.is_none());
/// # Ok(())
/// # }
/// ```
pub fn parse_line(line: &str) -> Result<Option<Instruction>, IsaError> {
    parse_line_numbered(line, 1)
}

/// Like [`parse_line`] but reports `line_no` in errors.
pub fn parse_line_numbered(line: &str, line_no: u32) -> Result<Option<Instruction>, IsaError> {
    let code = strip_comment(line).trim();
    if code.is_empty() {
        return Ok(None);
    }
    let (mnemonic, rest) = match code.find(|c: char| c.is_ascii_whitespace()) {
        Some(ws) => (&code[..ws], code[ws..].trim()),
        None => (code, ""),
    };
    let opcode = Opcode::from_mnemonic(mnemonic)
        .ok_or_else(|| IsaError::UnknownMnemonic(mnemonic.to_owned()))?;
    let tokens = split_operands(rest, line_no)?;
    let slots = opcode.slots();
    if tokens.len() != slots.len() {
        return Err(IsaError::Syntax {
            line: line_no,
            message: format!(
                "{} expects {} operands, found {}",
                opcode,
                slots.len(),
                tokens.len()
            ),
        });
    }
    let mut operands = Vec::with_capacity(tokens.len());
    for (token, &slot) in tokens.iter().zip(slots) {
        operands.push(parse_operand(token, slot, line_no)?);
    }
    Instruction::new(opcode, operands).map(Some)
}

/// Parses a block of assembly text into instructions, one per line.
///
/// # Errors
///
/// Propagates the first per-line error, with 1-based line numbers.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), gest_isa::IsaError> {
/// let body = gest_isa::asm::parse_block("ADD x0, x0, x1\nNOP\n; done")?;
/// assert_eq!(body.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_block(source: &str) -> Result<Vec<Instruction>, IsaError> {
    let mut out = Vec::new();
    for (i, line) in source.lines().enumerate() {
        if let Some(instr) = parse_line_numbered(line, (i + 1) as u32)? {
            out.push(instr);
        }
    }
    Ok(out)
}

/// Like [`parse_block`] but with *label* support: a line of the form
/// `name:` defines a label, and branch instructions may name a label in
/// place of a numeric offset (`CBNZ x1, skip_target`). Labels resolve to
/// forward skip distances, matching the ISA's forward-branch semantics —
/// the loop's own back-edge lives in the template, exactly as in the
/// paper's generated sources.
///
/// # Errors
///
/// In addition to [`parse_block`]'s errors:
/// * [`IsaError::Syntax`] for undefined labels, labels at or before the
///   branch (backward/zero-distance branches), duplicate labels, or label
///   distances beyond 255 instructions.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), gest_isa::IsaError> {
/// let block = gest_isa::asm::parse_labeled_block(
///     "CBZ x1, done\nADD x2, x3, x4\nMUL x5, x6, x7\ndone:\nNOP",
/// )?;
/// assert_eq!(block[0].branch_target(), Some(2), "skips ADD and MUL");
/// # Ok(())
/// # }
/// ```
pub fn parse_labeled_block(source: &str) -> Result<Vec<Instruction>, IsaError> {
    // Pass 1: instruction positions and label definitions.
    let mut labels: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    let mut instruction_lines: Vec<(u32, String)> = Vec::new();
    for (i, raw_line) in source.lines().enumerate() {
        let line_no = (i + 1) as u32;
        let code = strip_comment(raw_line).trim();
        if code.is_empty() {
            continue;
        }
        if let Some(name) = code.strip_suffix(':') {
            let name = name.trim();
            if name.is_empty() || !is_label_name(name) {
                return Err(IsaError::Syntax {
                    line: line_no,
                    message: format!("invalid label name {name:?}"),
                });
            }
            if labels.insert(name, instruction_lines.len()).is_some() {
                return Err(IsaError::Syntax {
                    line: line_no,
                    message: format!("duplicate label {name:?}"),
                });
            }
            continue;
        }
        instruction_lines.push((line_no, code.to_owned()));
    }
    // Pass 2: parse, substituting label operands on branches.
    let mut out = Vec::with_capacity(instruction_lines.len());
    for (index, (line_no, code)) in instruction_lines.iter().enumerate() {
        let resolved = resolve_branch_label(code, index, &labels, *line_no)?;
        if let Some(instr) = parse_line_numbered(&resolved, *line_no)? {
            out.push(instr);
        }
    }
    Ok(out)
}

fn is_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Replaces a trailing label operand on a branch line with its numeric
/// skip distance.
fn resolve_branch_label(
    code: &str,
    index: usize,
    labels: &std::collections::HashMap<&str, usize>,
    line_no: u32,
) -> Result<String, IsaError> {
    let mnemonic = code.split_whitespace().next().unwrap_or("");
    let is_branch = Opcode::from_mnemonic(mnemonic).is_some_and(Opcode::is_branch);
    if !is_branch {
        return Ok(code.to_owned());
    }
    let body = code[mnemonic.len()..].trim();
    if body.is_empty() {
        return Ok(code.to_owned());
    }
    let token = body
        .rsplit(',')
        .next()
        .expect("rsplit yields at least one piece")
        .trim();
    if token.starts_with('#') || !is_label_name(token) {
        return Ok(code.to_owned()); // numeric form, parse as-is
    }
    let Some(&position) = labels.get(token) else {
        return Err(IsaError::Syntax {
            line: line_no,
            message: format!("undefined label {token:?}"),
        });
    };
    if position <= index {
        return Err(IsaError::Syntax {
            line: line_no,
            message: format!(
                "label {token:?} is not strictly forward of the branch (loop back-edges belong in the template)"
            ),
        });
    }
    let skip = position - index - 1;
    if skip == 0 {
        return Err(IsaError::Syntax {
            line: line_no,
            message: format!("label {token:?} is the next instruction; a branch would be a no-op"),
        });
    }
    if skip > u8::MAX as usize {
        return Err(IsaError::Syntax {
            line: line_no,
            message: format!("label {token:?} is {skip} instructions away (max 255)"),
        });
    }
    let prefix = &code[..code.len() - token.len()];
    Ok(format!("{prefix}#{skip}"))
}

/// Formats a block of instructions as assembly text, one per line.
///
/// The output parses back with [`parse_block`].
pub fn format_block(instructions: &[Instruction]) -> String {
    let mut out = String::new();
    for instr in instructions {
        out.push_str(&instr.to_string());
        out.push('\n');
    }
    out
}

fn strip_comment(line: &str) -> &str {
    // `;` and `//` start comments anywhere; `#` only at line start (it is
    // the immediate sigil elsewhere).
    let mut end = line.len();
    if let Some(i) = line.find(';') {
        end = end.min(i);
    }
    if let Some(i) = line.find("//") {
        end = end.min(i);
    }
    let trimmed = line.trim_start();
    if trimmed.starts_with('#') && !trimmed.starts_with("#0x") {
        return "";
    }
    &line[..end]
}

/// Splits an operand list on commas, keeping `[...]` groups intact and then
/// flattening the bracketed address into its component operands.
fn split_operands(rest: &str, line_no: u32) -> Result<Vec<String>, IsaError> {
    let mut tokens = Vec::new();
    let mut depth = 0u32;
    let mut current = String::new();
    for c in rest.chars() {
        match c {
            '[' => {
                depth += 1;
            }
            ']' => {
                depth = depth.checked_sub(1).ok_or_else(|| IsaError::Syntax {
                    line: line_no,
                    message: "unbalanced ']'".into(),
                })?;
            }
            ',' if depth == 0 => {
                push_token(&mut tokens, &mut current);
                continue;
            }
            _ => {}
        }
        current.push(c);
    }
    if depth != 0 {
        return Err(IsaError::Syntax {
            line: line_no,
            message: "unbalanced '['".into(),
        });
    }
    push_token(&mut tokens, &mut current);
    // Flatten bracketed memory operands: "[x10" came through as part of a
    // token like "[x10, #8]"? No — brackets suppress the comma split, so a
    // token can be "[x10, #8]". Split those now.
    let mut flat = Vec::new();
    for token in tokens {
        if let Some(inner) = token.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
            for part in inner.split(',') {
                let part = part.trim();
                if !part.is_empty() {
                    flat.push(part.to_owned());
                }
            }
        } else {
            flat.push(token);
        }
    }
    Ok(flat)
}

fn push_token(tokens: &mut Vec<String>, current: &mut String) {
    let token = current.trim().to_owned();
    if !token.is_empty() {
        tokens.push(token);
    }
    current.clear();
}

fn parse_operand(token: &str, slot: OperandSlot, line_no: u32) -> Result<Operand, IsaError> {
    let syntax = |message: String| IsaError::Syntax {
        line: line_no,
        message,
    };
    match slot {
        OperandSlot::IntDst | OperandSlot::IntSrc => token
            .parse()
            .map(Operand::Reg)
            .map_err(|_| syntax(format!("expected integer register, found {token:?}"))),
        OperandSlot::VecDst | OperandSlot::VecSrc => token
            .parse()
            .map(Operand::VReg)
            .map_err(|_| syntax(format!("expected vector register, found {token:?}"))),
        OperandSlot::Imm => parse_imm(token).map(Operand::Imm).ok_or_else(|| {
            syntax(format!(
                "expected immediate like #8 or #0xAA, found {token:?}"
            ))
        }),
        OperandSlot::BranchTarget => {
            let value = parse_imm(token)
                .ok_or_else(|| syntax(format!("expected branch offset, found {token:?}")))?;
            u8::try_from(value)
                .ok()
                .filter(|v| *v >= 1)
                .map(Operand::Target)
                .ok_or_else(|| syntax(format!("branch offset must be 1..=255, found {value}")))
        }
    }
}

fn parse_imm(token: &str) -> Option<i64> {
    let body = token.strip_prefix('#').unwrap_or(token);
    let (negative, digits) = match body.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, body),
    };
    let value = if let Some(hex) = digits
        .strip_prefix("0x")
        .or_else(|| digits.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16).ok()? as i64
    } else {
        // Parse through u64 so full-width bit patterns (e.g. #18446744...)
        // are accepted, then reinterpret.
        digits.parse::<u64>().ok()? as i64
    };
    Some(if negative {
        value.wrapping_neg()
    } else {
        value
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Opcode;

    #[test]
    fn blank_and_comment_lines() {
        assert_eq!(parse_line("").unwrap(), None);
        assert_eq!(parse_line("   ").unwrap(), None);
        assert_eq!(parse_line("; comment").unwrap(), None);
        assert_eq!(parse_line("// comment").unwrap(), None);
        assert_eq!(parse_line("# comment").unwrap(), None);
    }

    #[test]
    fn trailing_comments_stripped() {
        let instr = parse_line("NOP ; pad").unwrap().unwrap();
        assert_eq!(instr.opcode(), Opcode::Nop);
        let instr = parse_line("ADD x0, x1, x2 // sum").unwrap().unwrap();
        assert_eq!(instr.opcode(), Opcode::Add);
    }

    #[test]
    fn memory_bracket_syntax() {
        let instr = parse_line("LDR x1, [x10, #8]").unwrap().unwrap();
        assert_eq!(instr.to_string(), "LDR x1, [x10, #8]");
        let instr = parse_line("STP x1, x2, [x10, #16]").unwrap().unwrap();
        assert_eq!(instr.to_string(), "STP x1, x2, [x10, #16]");
    }

    #[test]
    fn hex_and_negative_immediates() {
        let instr = parse_line("ADDI x0, x1, #-4").unwrap().unwrap();
        assert_eq!(instr.to_string(), "ADDI x0, x1, #-4");
        let instr = parse_line("MOVI x0, #0xAAAAAAAAAAAAAAAA").unwrap().unwrap();
        assert_eq!(instr.to_string(), "MOVI x0, #0xAAAAAAAAAAAAAAAA");
    }

    #[test]
    fn case_insensitive_mnemonics() {
        let instr = parse_line("add x0, x1, x2").unwrap().unwrap();
        assert_eq!(instr.opcode(), Opcode::Add);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_block("NOP\nADD x0, x1\nNOP").unwrap_err();
        assert!(matches!(err, IsaError::Syntax { line: 2, .. }), "{err}");
    }

    #[test]
    fn unknown_mnemonic() {
        let err = parse_line("FROB x0").unwrap_err();
        assert!(matches!(err, IsaError::UnknownMnemonic(ref m) if m == "FROB"));
    }

    #[test]
    fn wrong_register_class_rejected() {
        assert!(parse_line("ADD v0, x1, x2").is_err());
        assert!(parse_line("FADD x0, v1, v2").is_err());
    }

    #[test]
    fn branch_offset_bounds() {
        assert!(parse_line("B #0").is_err());
        assert!(parse_line("B #256").is_err());
        assert!(parse_line("B #1").unwrap().is_some());
        assert!(parse_line("B #255").unwrap().is_some());
    }

    #[test]
    fn unbalanced_brackets_rejected() {
        assert!(parse_line("LDR x1, [x10, #8").is_err());
        assert!(parse_line("LDR x1, x10, #8]").is_err());
    }

    #[test]
    fn labeled_block_resolves_forward_branches() {
        let block = parse_labeled_block(
            "start_is_not_special:\nCBNZ x1, skip2\nADD x0, x1, x2\nMUL x3, x4, x5\nskip2:\nB end\nSUB x6, x7, x0\nEOR x1, x2, x3\nend:\nNOP",
        )
        .unwrap();
        assert_eq!(block[0].branch_target(), Some(2), "CBNZ skips ADD+MUL");
        assert_eq!(block[3].branch_target(), Some(2), "B skips SUB+EOR");
        assert_eq!(block.len(), 7, "labels are not instructions");
    }

    #[test]
    fn labeled_block_numeric_targets_still_work() {
        let block = parse_labeled_block("B #2\nNOP\nNOP\nNOP").unwrap();
        assert_eq!(block[0].branch_target(), Some(2));
    }

    #[test]
    fn undefined_label_rejected() {
        let err = parse_labeled_block("B nowhere\nNOP").unwrap_err();
        assert!(
            matches!(err, IsaError::Syntax { ref message, .. } if message.contains("undefined"))
        );
    }

    #[test]
    fn backward_label_rejected() {
        let err = parse_labeled_block("top:\nNOP\nB top").unwrap_err();
        assert!(
            matches!(err, IsaError::Syntax { ref message, .. } if message.contains("forward")),
            "backward branches belong in the template back-edge"
        );
    }

    #[test]
    fn duplicate_and_invalid_labels_rejected() {
        assert!(parse_labeled_block("a:\na:\nNOP").is_err());
        assert!(parse_labeled_block("1bad:\nNOP").is_err());
    }

    #[test]
    fn label_to_next_instruction_rejected() {
        let err = parse_labeled_block("B next\nnext:\nNOP").unwrap_err();
        assert!(matches!(err, IsaError::Syntax { ref message, .. } if message.contains("no-op")));
    }

    #[test]
    fn non_branch_lines_unaffected_by_labels() {
        let block = parse_labeled_block("done:\nADD x1, x2, x3").unwrap();
        assert_eq!(block.len(), 1);
    }

    #[test]
    fn block_round_trip() {
        let source = "ADD x0, x1, x2\nLDR x3, [x10, #8]\nVFMLA v0, v1, v2\nCBNZ x4, #2\nNOP\n";
        let block = parse_block(source).unwrap();
        assert_eq!(format_block(&block), source);
    }
}
