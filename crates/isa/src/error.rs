//! Error types shared across the ISA crate.

use crate::opcode::Opcode;
use std::error::Error;
use std::fmt;

/// Errors from constructing or validating ISA entities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// A register index outside the architectural register file.
    InvalidRegister {
        /// The offending index.
        index: u8,
        /// Size of the register file.
        limit: u8,
    },
    /// An instruction was built with the wrong operand count or kinds.
    BadOperands {
        /// The opcode being constructed.
        opcode: Opcode,
        /// Description of the mismatch.
        message: String,
    },
    /// A mnemonic that names no known opcode.
    UnknownMnemonic(String),
    /// An assembly line that could not be parsed.
    Syntax {
        /// 1-based line number when parsing multi-line sources, else 1.
        line: u32,
        /// Description of the problem.
        message: String,
    },
    /// An instruction definition referenced an operand id that was never
    /// defined (the paper specifies the framework must terminate on this).
    UndefinedOperand {
        /// Name of the instruction definition.
        instruction: String,
        /// The missing operand id.
        operand: String,
    },
    /// An operand definition is incompatible with the opcode's slot
    /// (e.g. a vector-register class supplied where an immediate is needed).
    IncompatibleOperand {
        /// Name of the instruction definition.
        instruction: String,
        /// The operand id.
        operand: String,
        /// Description of the expected kind.
        expected: &'static str,
    },
    /// An operand or instruction definition with an empty value set.
    EmptyDefinition {
        /// The definition's id or name.
        id: String,
    },
    /// Two definitions share a name/id that must be unique.
    DuplicateDefinition {
        /// The repeated id.
        id: String,
    },
    /// A configuration element was missing or malformed.
    Config(String),
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::InvalidRegister { index, limit } => {
                write!(f, "register index {index} out of range (register file has {limit})")
            }
            IsaError::BadOperands { opcode, message } => {
                write!(f, "bad operands for {opcode}: {message}")
            }
            IsaError::UnknownMnemonic(m) => write!(f, "unknown mnemonic {m:?}"),
            IsaError::Syntax { line, message } => write!(f, "syntax error on line {line}: {message}"),
            IsaError::UndefinedOperand { instruction, operand } => write!(
                f,
                "instruction definition {instruction:?} references undefined operand {operand:?}"
            ),
            IsaError::IncompatibleOperand { instruction, operand, expected } => write!(
                f,
                "operand {operand:?} of instruction definition {instruction:?} is incompatible: expected {expected}"
            ),
            IsaError::EmptyDefinition { id } => {
                write!(f, "definition {id:?} has an empty value set")
            }
            IsaError::DuplicateDefinition { id } => write!(f, "duplicate definition {id:?}"),
            IsaError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for IsaError {}

/// Errors raised during functional execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// An instruction had operand kinds its opcode cannot execute
    /// (only possible if validation was bypassed).
    MalformedInstruction {
        /// The offending opcode.
        opcode: Opcode,
    },
    /// A branch skipped beyond the end of the executing block.
    BranchOutOfRange {
        /// The requested skip distance.
        skip: u8,
        /// Remaining instructions in the block.
        remaining: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MalformedInstruction { opcode } => {
                write!(f, "malformed instruction for opcode {opcode}")
            }
            ExecError::BranchOutOfRange { skip, remaining } => {
                write!(
                    f,
                    "branch skip {skip} exceeds remaining block length {remaining}"
                )
            }
        }
    }
}

impl Error for ExecError {}

/// Errors from the binary population codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    UnexpectedEnd {
        /// What was being decoded.
        decoding: &'static str,
    },
    /// A tag byte that matches no known variant.
    BadTag {
        /// What was being decoded.
        decoding: &'static str,
        /// The unknown tag value.
        tag: u16,
    },
    /// A decoded string was not valid UTF-8.
    BadString,
    /// A length field exceeded a sanity limit.
    LengthOverflow {
        /// The decoded length.
        length: u64,
        /// The enforced limit.
        limit: u64,
    },
    /// The payload failed domain validation after decoding.
    Invalid(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd { decoding } => {
                write!(f, "buffer ended while decoding {decoding}")
            }
            CodecError::BadTag { decoding, tag } => {
                write!(f, "unknown tag {tag} while decoding {decoding}")
            }
            CodecError::BadString => write!(f, "decoded string is not valid utf-8"),
            CodecError::LengthOverflow { length, limit } => {
                write!(f, "decoded length {length} exceeds limit {limit}")
            }
            CodecError::Invalid(msg) => write!(f, "decoded value failed validation: {msg}"),
        }
    }
}

impl Error for CodecError {}

impl From<IsaError> for CodecError {
    fn from(err: IsaError) -> Self {
        CodecError::Invalid(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_error_messages_are_informative() {
        let err = IsaError::UndefinedOperand {
            instruction: "LDR".into(),
            operand: "mem_result".into(),
        };
        let text = err.to_string();
        assert!(text.contains("LDR"));
        assert!(text.contains("mem_result"));
    }

    #[test]
    fn exec_error_messages() {
        let err = ExecError::BranchOutOfRange {
            skip: 9,
            remaining: 3,
        };
        assert!(err.to_string().contains('9'));
    }

    #[test]
    fn codec_error_from_isa_error() {
        let err: CodecError = IsaError::UnknownMnemonic("FOO".into()).into();
        assert!(matches!(err, CodecError::Invalid(_)));
    }
}
