//! A small length-checked binary codec for persisting populations.
//!
//! The paper saves each GA population to "a separate binary file" that can
//! be reloaded as a seed population or post-processed for statistics
//! (§III.D). This module provides the primitive encoder/decoder those files
//! are built from: little-endian fixed-width integers, LEB128 varints,
//! length-prefixed strings/byte-slices, plus instruction and program
//! payloads. No external serialization dependency is used.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use gest_isa::codec::{Decoder, Encoder};
//!
//! let mut enc = Encoder::new();
//! enc.u32(42).str("hello").varint(1 << 40);
//! let bytes = enc.into_bytes();
//!
//! let mut dec = Decoder::new(&bytes);
//! assert_eq!(dec.u32()?, 42);
//! assert_eq!(dec.str()?, "hello");
//! assert_eq!(dec.varint()?, 1 << 40);
//! # Ok(())
//! # }
//! ```

use crate::instruction::{Instruction, Operand};
use crate::opcode::Opcode;
use crate::program::{MemInit, Program};
use crate::reg::{Reg, VReg};
use crate::CodecError;

/// Maximum length accepted for any decoded string/sequence (1 MiB). Guards
/// against corrupted or hostile population files allocating unboundedly.
pub const MAX_LEN: u64 = 1 << 20;

/// Appends binary values to a growing buffer.
#[derive(Debug, Clone, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) -> &mut Encoder {
        self.buf.push(v);
        self
    }

    /// Writes a little-endian `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Encoder {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Encoder {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Encoder {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) -> &mut Encoder {
        self.u64(v.to_bits())
    }

    /// Writes an unsigned LEB128 varint.
    pub fn varint(&mut self, mut v: u64) -> &mut Encoder {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return self;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Writes a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Encoder {
        self.varint(v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Encoder {
        self.bytes(v.as_bytes())
    }

    /// Writes an instruction.
    pub fn instruction(&mut self, instr: &Instruction) -> &mut Encoder {
        let opcode_index = Opcode::ALL
            .iter()
            .position(|&op| op == instr.opcode())
            .expect("every opcode is in ALL") as u16;
        self.u16(opcode_index);
        // Operand count is implied by the opcode signature; encode only the
        // payloads, tagged for defence in depth.
        for operand in instr.operands() {
            match operand {
                Operand::Reg(r) => {
                    self.u8(0).u8(r.index());
                }
                Operand::VReg(v) => {
                    self.u8(1).u8(v.index());
                }
                Operand::Imm(i) => {
                    self.u8(2).u64(*i as u64);
                }
                Operand::Target(t) => {
                    self.u8(3).u8(*t);
                }
            }
        }
        self
    }

    /// Writes a sequence of instructions with a count prefix.
    pub fn instructions(&mut self, block: &[Instruction]) -> &mut Encoder {
        self.varint(block.len() as u64);
        for instr in block {
            self.instruction(instr);
        }
        self
    }

    /// Writes a whole program.
    pub fn program(&mut self, program: &Program) -> &mut Encoder {
        self.str(&program.name);
        match program.mem_init {
            MemInit::Zero => self.u8(0),
            MemInit::Fill(byte) => self.u8(1).u8(byte),
            MemInit::Checkerboard => self.u8(2),
        };
        self.instructions(&program.init);
        self.instructions(&program.body);
        self
    }
}

/// Reads binary values from a slice.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over the given bytes.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    /// Bytes remaining to be decoded.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether all input has been consumed.
    pub fn is_finished(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEnd { decoding: what });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(
            self.take(2, "u16")?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4, "u32")?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8, "u64")?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an unsigned LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, CodecError> {
        let mut value = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.take(1, "varint")?[0];
            // The 10th byte (shift 63) may only contribute one bit; higher
            // bits would silently wrap.
            if shift == 63 && byte & 0x7E != 0 {
                return Err(CodecError::BadTag {
                    decoding: "varint",
                    tag: byte as u16,
                });
            }
            value |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(CodecError::BadTag {
            decoding: "varint",
            tag: 0x80,
        })
    }

    fn len_prefix(&mut self, what: &'static str) -> Result<usize, CodecError> {
        let len = self.varint()?;
        if len > MAX_LEN {
            return Err(CodecError::LengthOverflow {
                length: len,
                limit: MAX_LEN,
            });
        }
        if len as usize > self.remaining() {
            return Err(CodecError::UnexpectedEnd { decoding: what });
        }
        Ok(len as usize)
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.len_prefix("bytes")?;
        self.take(len, "bytes")
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| CodecError::BadString)
    }

    /// Reads an instruction.
    pub fn instruction(&mut self) -> Result<Instruction, CodecError> {
        let opcode_index = self.u16()?;
        let opcode = *Opcode::ALL
            .get(opcode_index as usize)
            .ok_or(CodecError::BadTag {
                decoding: "opcode",
                tag: opcode_index,
            })?;
        let mut operands = Vec::with_capacity(opcode.slots().len());
        for _ in opcode.slots() {
            let tag = self.u8()?;
            let operand = match tag {
                0 => Operand::Reg(Reg::new(self.u8()?)?),
                1 => Operand::VReg(VReg::new(self.u8()?)?),
                2 => Operand::Imm(self.u64()? as i64),
                3 => Operand::Target(self.u8()?),
                other => {
                    return Err(CodecError::BadTag {
                        decoding: "operand",
                        tag: other as u16,
                    })
                }
            };
            operands.push(operand);
        }
        Ok(Instruction::new(opcode, operands)?)
    }

    /// Reads a count-prefixed sequence of instructions.
    pub fn instructions(&mut self) -> Result<Vec<Instruction>, CodecError> {
        let len = self.varint()?;
        if len > MAX_LEN {
            return Err(CodecError::LengthOverflow {
                length: len,
                limit: MAX_LEN,
            });
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(self.instruction()?);
        }
        Ok(out)
    }

    /// Reads a whole program.
    pub fn program(&mut self) -> Result<Program, CodecError> {
        let name = self.str()?.to_owned();
        let mem_init = match self.u8()? {
            0 => MemInit::Zero,
            1 => MemInit::Fill(self.u8()?),
            2 => MemInit::Checkerboard,
            other => {
                return Err(CodecError::BadTag {
                    decoding: "mem_init",
                    tag: other as u16,
                })
            }
        };
        let init = self.instructions()?;
        let body = self.instructions()?;
        Ok(Program {
            name,
            init,
            body,
            mem_init,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm;

    #[test]
    fn primitive_round_trip() {
        let mut enc = Encoder::new();
        enc.u8(7)
            .u16(300)
            .u32(70_000)
            .u64(1 << 50)
            .f64(3.5)
            .varint(0)
            .varint(127)
            .varint(u64::MAX);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u16().unwrap(), 300);
        assert_eq!(dec.u32().unwrap(), 70_000);
        assert_eq!(dec.u64().unwrap(), 1 << 50);
        assert_eq!(dec.f64().unwrap(), 3.5);
        assert_eq!(dec.varint().unwrap(), 0);
        assert_eq!(dec.varint().unwrap(), 127);
        assert_eq!(dec.varint().unwrap(), u64::MAX);
        assert!(dec.is_finished());
    }

    #[test]
    fn string_round_trip() {
        let mut enc = Encoder::new();
        enc.str("población ✓");
        let bytes = enc.into_bytes();
        assert_eq!(Decoder::new(&bytes).str().unwrap(), "población ✓");
    }

    #[test]
    fn truncated_input_errors() {
        let mut enc = Encoder::new();
        enc.u64(123);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes[..4]);
        assert!(matches!(dec.u64(), Err(CodecError::UnexpectedEnd { .. })));
    }

    #[test]
    fn overlong_varint_rejected() {
        // 9 continuation bytes then a 10th byte with bits above 63.
        let mut bytes = vec![0xFFu8; 9];
        bytes.push(0x7F);
        assert!(matches!(
            Decoder::new(&bytes).varint(),
            Err(CodecError::BadTag {
                decoding: "varint",
                ..
            })
        ));
        // u64::MAX itself still decodes.
        let mut enc = Encoder::new();
        enc.varint(u64::MAX);
        assert_eq!(Decoder::new(&enc.into_bytes()).varint().unwrap(), u64::MAX);
    }

    #[test]
    fn length_bomb_rejected() {
        let mut enc = Encoder::new();
        enc.varint(MAX_LEN + 1);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            dec.bytes(),
            Err(CodecError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn length_exceeding_remaining_rejected() {
        let mut enc = Encoder::new();
        enc.varint(1000); // claims 1000 bytes follow; none do
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(dec.bytes(), Err(CodecError::UnexpectedEnd { .. })));
    }

    #[test]
    fn instruction_round_trip() {
        let block = asm::parse_block(
            "ADD x1, x2, x3\nLDR x4, [x10, #8]\nVFMLA v0, v1, v2\nCBNZ x5, #2\nMOVI x0, #0xAAAAAAAAAAAAAAAA\nNOP",
        )
        .unwrap();
        let mut enc = Encoder::new();
        enc.instructions(&block);
        let bytes = enc.into_bytes();
        let decoded = Decoder::new(&bytes).instructions().unwrap();
        assert_eq!(decoded, block);
    }

    #[test]
    fn program_round_trip() {
        let program = Program {
            name: "virus_1".into(),
            init: asm::parse_block("MOVI x10, #0").unwrap(),
            body: asm::parse_block("FMUL v0, v1, v2\nLDR x1, [x10, #0]").unwrap(),
            mem_init: MemInit::Checkerboard,
        };
        let mut enc = Encoder::new();
        enc.program(&program);
        let bytes = enc.into_bytes();
        assert_eq!(Decoder::new(&bytes).program().unwrap(), program);
    }

    #[test]
    fn bad_opcode_tag_rejected() {
        let mut enc = Encoder::new();
        enc.u16(9999);
        let bytes = enc.into_bytes();
        assert!(matches!(
            Decoder::new(&bytes).instruction(),
            Err(CodecError::BadTag {
                decoding: "opcode",
                ..
            })
        ));
    }

    #[test]
    fn bad_operand_tag_rejected() {
        let mut enc = Encoder::new();
        enc.u16(0); // ADD
        enc.u8(200); // bogus operand tag
        let bytes = enc.into_bytes();
        assert!(matches!(
            Decoder::new(&bytes).instruction(),
            Err(CodecError::BadTag {
                decoding: "operand",
                ..
            })
        ));
    }

    #[test]
    fn wrong_register_class_payload_rejected() {
        // Encode ADD with a vector register in slot 0: decoding must fail
        // domain validation.
        let mut enc = Encoder::new();
        enc.u16(0); // ADD
        enc.u8(1).u8(0); // VReg v0 where IntDst expected
        enc.u8(0).u8(1);
        enc.u8(0).u8(2);
        let bytes = enc.into_bytes();
        assert!(matches!(
            Decoder::new(&bytes).instruction(),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn out_of_range_register_rejected() {
        let mut enc = Encoder::new();
        enc.u16(0); // ADD
        enc.u8(0).u8(99); // x99 does not exist
        let bytes = enc.into_bytes();
        assert!(matches!(
            Decoder::new(&bytes).instruction(),
            Err(CodecError::Invalid(_))
        ));
    }
}
