#![warn(missing_docs)]

//! Synthetic ARM-flavoured ISA underpinning the GeST reproduction.
//!
//! The GeST paper (ISPASS 2019) evolves loops of real ARM/x86 assembly and
//! measures them on silicon. This crate supplies the equivalent substrate for
//! a fully self-contained reproduction:
//!
//! * [`Reg`]/[`VReg`] — integer and vector register files,
//! * [`Opcode`]/[`Instruction`] — an ARM-flavoured instruction set with
//!   short/long integer, scalar FP, SIMD, memory and branch instructions,
//! * [`ArchState`]/[`Effect`] — functional execution semantics, including
//!   per-instruction bit-toggle accounting that the power model consumes,
//! * [`InstructionDef`]/[`OperandDef`]/[`InstructionPool`] — the GA search
//!   space exactly as the paper's XML schema describes it (Figure 4),
//! * [`asm`] — a line assembler and disassembler,
//! * [`Template`]/[`Program`] — template source files with a `#loop_code`
//!   marker (paper §III.B.2),
//! * [`codec`] — a small length-checked binary codec used to persist
//!   populations (paper §III.D).
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use gest_isa::{asm, ArchState, Reg};
//!
//! let instr = asm::parse_line("ADD x1, x2, x3")?.expect("an instruction");
//! let mut state = ArchState::new(1 << 12);
//! state.set_reg(Reg::new(2)?, 40);
//! state.set_reg(Reg::new(3)?, 2);
//! instr.execute(&mut state)?;
//! assert_eq!(state.reg(Reg::new(1)?), 42);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod codec;
mod def;
mod def_xml;
mod error;
pub mod features;
mod instruction;
mod opcode;
mod program;
mod reg;
mod semantics;
mod template;

pub use def::{
    Gene, InstructionDef, InstructionPart, InstructionPool, OperandDef, OperandKind, PoolBuilder,
};
pub use def_xml::{pool_from_xml, pool_to_xml};
pub use error::{CodecError, ExecError, IsaError};
pub use instruction::{Instruction, Operand};
pub use opcode::{InstrClass, Opcode, OperandSlot};
pub use program::{MemInit, Program};
pub use reg::{Reg, VReg};
pub use semantics::{ArchState, Effect, Flow, MemAccess};
pub use template::Template;
