//! Functional execution semantics and activity accounting.
//!
//! Every instruction executes against an [`ArchState`] and yields an
//! [`Effect`] describing control flow plus the *bit-toggle activity* it
//! caused. The paper observes (§III.B.2) that register values have a
//! considerable effect on power — checkerboard patterns like `0xAAAA…`
//! maximize bit switching — so the simulator's power model is driven by the
//! Hamming-distance accounting collected here rather than by opcode class
//! alone.

use crate::instruction::{Instruction, Operand};
use crate::opcode::Opcode;
use crate::reg::{Reg, VReg, NUM_INT_REGS, NUM_VEC_REGS};
use crate::ExecError;

/// Control-flow outcome of one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flow {
    /// Fall through to the next instruction.
    Sequential,
    /// Skip the following `n` instructions (a taken forward branch). Skips
    /// past the end of a block simply end the block.
    Skip(u8),
}

/// A memory access performed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// Byte address after masking and alignment.
    pub addr: usize,
    /// Access width in bytes.
    pub width: usize,
    /// `true` for stores, `false` for loads.
    pub is_store: bool,
}

/// The observable outcome of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Effect {
    /// Where control flow goes next.
    pub flow: Flow,
    /// Total Hamming distance between old and new values of every
    /// destination (registers and stored memory bytes). This is the dynamic
    /// switching-activity proxy consumed by the power model.
    pub dest_toggles: u32,
    /// Total population count of all source values read. A secondary
    /// activity proxy for operand-bus and ALU input capacitance.
    pub src_bits: u32,
    /// The memory access performed, if any.
    pub mem: Option<MemAccess>,
    /// Whether a branch was taken (always `false` for non-branches).
    pub branch_taken: bool,
}

impl Default for Effect {
    fn default() -> Self {
        Effect {
            flow: Flow::Sequential,
            dest_toggles: 0,
            src_bits: 0,
            mem: None,
            branch_taken: false,
        }
    }
}

/// Architectural state: integer registers, vector registers, and a private
/// data-memory buffer.
///
/// The memory buffer plays the role of the virus's scratch array. Like the
/// viruses in the paper (which keep extremely high L1 hit rates), addresses
/// are wrapped into the buffer with a power-of-two mask, so any generated
/// base/offset combination is a safe, in-bounds access.
#[derive(Debug, Clone)]
pub struct ArchState {
    xregs: [u64; NUM_INT_REGS as usize],
    vregs: [[u64; 2]; NUM_VEC_REGS as usize],
    mem: Vec<u8>,
    /// Incremental content hash of `mem` (see [`ArchState::mem_hash`]):
    /// the XOR over all bytes of `mem_byte_mix(addr, mem[addr])`, kept
    /// current by [`store`](Self::store) so observers can compare memory
    /// images in O(1) instead of O(len). `Cell`: recomputed lazily after
    /// bulk writes that bypass `store`.
    mem_hash: std::cell::Cell<u64>,
    /// Set by bulk-write paths ([`fill_mem`](Self::fill_mem),
    /// [`mem_mut`](Self::mem_mut)); forces a rescan on the next
    /// [`mem_hash`](Self::mem_hash) call.
    mem_hash_dirty: std::cell::Cell<bool>,
}

impl PartialEq for ArchState {
    fn eq(&self, other: &ArchState) -> bool {
        self.xregs == other.xregs && self.vregs == other.vregs && self.mem == other.mem
    }
}

impl Eq for ArchState {}

/// SplitMix64 finalizer: a fast, well-mixed 64-bit permutation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Zobrist-style per-byte memory mix. Zero bytes map to zero so a zeroed
/// buffer hashes to zero without scanning it.
fn mem_byte_mix(addr: usize, byte: u8) -> u64 {
    if byte == 0 {
        0
    } else {
        splitmix64(((addr as u64) << 8) | u64::from(byte))
    }
}

impl ArchState {
    /// Creates a state with a zeroed memory buffer of `mem_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `mem_size` is not a power of two or is smaller than 64
    /// bytes (the widest access is 16 bytes and needs alignment room).
    pub fn new(mem_size: usize) -> ArchState {
        assert!(
            mem_size.is_power_of_two() && mem_size >= 64,
            "memory size must be a power of two >= 64, got {mem_size}"
        );
        ArchState {
            xregs: [0; NUM_INT_REGS as usize],
            vregs: [[0; 2]; NUM_VEC_REGS as usize],
            mem: vec![0; mem_size],
            // zero bytes contribute 0 to the mix, so a fresh buffer is clean
            mem_hash: std::cell::Cell::new(0),
            mem_hash_dirty: std::cell::Cell::new(false),
        }
    }

    /// The memory buffer size in bytes.
    pub fn mem_size(&self) -> usize {
        self.mem.len()
    }

    /// Returns the state to its freshly-constructed condition (all
    /// registers and memory zero) without releasing the memory buffer,
    /// so pooled states can be recycled across simulation runs.
    pub fn reset(&mut self) {
        self.reset_regs();
        self.mem.fill(0);
        self.mem_hash.set(0);
        self.mem_hash_dirty.set(false);
    }

    /// Zeroes just the register files, leaving the memory buffer (and its
    /// hash bookkeeping) untouched — for callers that are about to
    /// overwrite the whole memory image anyway, like batched simulation
    /// re-filling a pooled state.
    pub fn reset_regs(&mut self) {
        self.xregs = [0; NUM_INT_REGS as usize];
        self.vregs = [[0; 2]; NUM_VEC_REGS as usize];
    }

    /// Installs a known content hash for the current memory image,
    /// clearing any pending rescan. Callers that initialize many states
    /// with the same fill pattern can compute the hash once and seed the
    /// rest; subsequent [`store`](Self::store) updates stay incremental
    /// from the seeded value.
    ///
    /// Debug builds verify the seed against a full rescan, so any
    /// mismatch is caught by the test suite rather than silently skewing
    /// hash-based observers.
    pub fn seed_mem_hash(&self, hash: u64) {
        #[cfg(debug_assertions)]
        {
            let mut check = 0u64;
            for (addr, &byte) in self.mem.iter().enumerate() {
                check ^= mem_byte_mix(addr, byte);
            }
            debug_assert_eq!(check, hash, "seeded mem hash must match the image");
        }
        self.mem_hash.set(hash);
        self.mem_hash_dirty.set(false);
    }

    /// Reads an integer register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.xregs[r.index() as usize]
    }

    /// Writes an integer register.
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        self.xregs[r.index() as usize] = value;
    }

    /// Reads a vector register as two 64-bit lanes.
    pub fn vreg(&self, v: VReg) -> [u64; 2] {
        self.vregs[v.index() as usize]
    }

    /// Writes a vector register.
    pub fn set_vreg(&mut self, v: VReg, lanes: [u64; 2]) {
        self.vregs[v.index() as usize] = lanes;
    }

    /// Fills the memory buffer with a repeating byte pattern.
    pub fn fill_mem(&mut self, byte: u8) {
        self.mem.fill(byte);
        self.mem_hash_dirty.set(true);
    }

    /// Direct read access to the memory buffer (e.g. for workload setup).
    pub fn mem(&self) -> &[u8] {
        &self.mem
    }

    /// All integer registers in index order.
    pub fn xregs(&self) -> &[u64] {
        &self.xregs
    }

    /// All vector registers in index order, as 64-bit lane pairs.
    pub fn vregs(&self) -> &[[u64; 2]] {
        &self.vregs
    }

    /// Direct mutable access to the memory buffer.
    pub fn mem_mut(&mut self) -> &mut [u8] {
        self.mem_hash_dirty.set(true);
        &mut self.mem
    }

    /// A 64-bit content hash of the memory buffer, equal for equal images.
    ///
    /// Maintained incrementally by [`store`](Self::store) — one XOR pair per
    /// changed byte — so during simulation this is O(1) per call rather than
    /// O(len). Bulk writes through [`fill_mem`](Self::fill_mem) or
    /// [`mem_mut`](Self::mem_mut) mark the hash stale and the next call
    /// rescans the buffer once.
    ///
    /// Two different images collide with probability ~2⁻⁶⁴; callers that
    /// need certainty must compare [`mem`](Self::mem) directly.
    pub fn mem_hash(&self) -> u64 {
        if self.mem_hash_dirty.get() {
            let mut h = 0u64;
            for (addr, &byte) in self.mem.iter().enumerate() {
                h ^= mem_byte_mix(addr, byte);
            }
            self.mem_hash.set(h);
            self.mem_hash_dirty.set(false);
        }
        self.mem_hash.get()
    }

    fn mem_addr(&self, base: u64, offset: i64, width: usize) -> usize {
        let raw = base.wrapping_add(offset as u64) as usize;
        (raw & (self.mem.len() - 1)) & !(width - 1)
    }

    fn load(&self, addr: usize, width: usize) -> u64 {
        let mut value = 0u64;
        for i in 0..width.min(8) {
            value |= (self.mem[addr + i] as u64) << (8 * i);
        }
        value
    }

    fn store(&mut self, addr: usize, width: usize, value: u64) -> u32 {
        let mut toggles = 0u32;
        let mut hash_delta = 0u64;
        for i in 0..width.min(8) {
            let new = (value >> (8 * i)) as u8;
            let old = self.mem[addr + i];
            toggles += (old ^ new).count_ones();
            if old != new {
                hash_delta ^= mem_byte_mix(addr + i, old) ^ mem_byte_mix(addr + i, new);
                self.mem[addr + i] = new;
            }
        }
        if hash_delta != 0 {
            self.mem_hash.set(self.mem_hash.get() ^ hash_delta);
        }
        toggles
    }
}

/// The canonical checkerboard initialization pattern used by the paper's
/// templates to maximize bit switching.
pub const CHECKERBOARD: u64 = 0xAAAA_AAAA_AAAA_AAAA;

struct Ops<'a> {
    instr: &'a Instruction,
}

impl<'a> Ops<'a> {
    fn reg(&self, i: usize) -> Result<Reg, ExecError> {
        match self.instr.operands().get(i) {
            Some(Operand::Reg(r)) => Ok(*r),
            _ => Err(ExecError::MalformedInstruction {
                opcode: self.instr.opcode(),
            }),
        }
    }

    fn vreg(&self, i: usize) -> Result<VReg, ExecError> {
        match self.instr.operands().get(i) {
            Some(Operand::VReg(v)) => Ok(*v),
            _ => Err(ExecError::MalformedInstruction {
                opcode: self.instr.opcode(),
            }),
        }
    }

    fn imm(&self, i: usize) -> Result<i64, ExecError> {
        match self.instr.operands().get(i) {
            Some(Operand::Imm(v)) => Ok(*v),
            _ => Err(ExecError::MalformedInstruction {
                opcode: self.instr.opcode(),
            }),
        }
    }

    fn target(&self, i: usize) -> Result<u8, ExecError> {
        match self.instr.operands().get(i) {
            Some(Operand::Target(t)) => Ok(*t),
            _ => Err(ExecError::MalformedInstruction {
                opcode: self.instr.opcode(),
            }),
        }
    }
}

fn hamming(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones()
}

impl Instruction {
    /// Executes this instruction against `state`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::MalformedInstruction`] only if the instruction
    /// was constructed without validation (impossible through the public
    /// API).
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// use gest_isa::{asm, ArchState, Flow};
    /// let mut state = ArchState::new(64);
    /// let b = asm::parse_line("B #2")?.unwrap();
    /// let effect = b.execute(&mut state)?;
    /// assert_eq!(effect.flow, Flow::Skip(2));
    /// # Ok(())
    /// # }
    /// ```
    pub fn execute(&self, state: &mut ArchState) -> Result<Effect, ExecError> {
        let ops = Ops { instr: self };
        let mut effect = Effect::default();

        // Integer three-operand helper: dst = f(a, b).
        let int3 = |state: &mut ArchState,
                    effect: &mut Effect,
                    f: fn(u64, u64) -> u64|
         -> Result<(), ExecError> {
            let dst = ops.reg(0)?;
            let a = state.reg(ops.reg(1)?);
            let b = state.reg(ops.reg(2)?);
            let result = f(a, b);
            effect.src_bits = a.count_ones() + b.count_ones();
            effect.dest_toggles = hamming(state.reg(dst), result);
            state.set_reg(dst, result);
            Ok(())
        };

        // Integer reg+imm helper: dst = f(a, imm).
        let int_imm = |state: &mut ArchState,
                       effect: &mut Effect,
                       f: fn(u64, i64) -> u64|
         -> Result<(), ExecError> {
            let dst = ops.reg(0)?;
            let a = state.reg(ops.reg(1)?);
            let imm = ops.imm(2)?;
            let result = f(a, imm);
            effect.src_bits = a.count_ones();
            effect.dest_toggles = hamming(state.reg(dst), result);
            state.set_reg(dst, result);
            Ok(())
        };

        // Scalar FP helper on lane 0: dst = f(a, b) with lane 1 preserved.
        let fp2 = |state: &mut ArchState,
                   effect: &mut Effect,
                   f: fn(f64, f64) -> f64|
         -> Result<(), ExecError> {
            let dst = ops.vreg(0)?;
            let a = state.vreg(ops.vreg(1)?);
            let b = state.vreg(ops.vreg(2)?);
            let result = sanitize(f(f64::from_bits(a[0]), f64::from_bits(b[0])));
            let old = state.vreg(dst);
            let new = [result.to_bits(), old[1]];
            effect.src_bits = a[0].count_ones() + b[0].count_ones();
            effect.dest_toggles = hamming(old[0], new[0]);
            state.set_vreg(dst, new);
            Ok(())
        };

        // SIMD lane-wise integer helper.
        let simd3 = |state: &mut ArchState,
                     effect: &mut Effect,
                     f: fn(u64, u64) -> u64|
         -> Result<(), ExecError> {
            let dst = ops.vreg(0)?;
            let a = state.vreg(ops.vreg(1)?);
            let b = state.vreg(ops.vreg(2)?);
            let old = state.vreg(dst);
            let new = [f(a[0], b[0]), f(a[1], b[1])];
            effect.src_bits =
                a[0].count_ones() + a[1].count_ones() + b[0].count_ones() + b[1].count_ones();
            effect.dest_toggles = hamming(old[0], new[0]) + hamming(old[1], new[1]);
            state.set_vreg(dst, new);
            Ok(())
        };

        // SIMD lane-wise FP helper.
        let simd_fp = |state: &mut ArchState,
                       effect: &mut Effect,
                       f: fn(f64, f64) -> f64|
         -> Result<(), ExecError> {
            let dst = ops.vreg(0)?;
            let a = state.vreg(ops.vreg(1)?);
            let b = state.vreg(ops.vreg(2)?);
            let old = state.vreg(dst);
            let new = [
                sanitize(f(f64::from_bits(a[0]), f64::from_bits(b[0]))).to_bits(),
                sanitize(f(f64::from_bits(a[1]), f64::from_bits(b[1]))).to_bits(),
            ];
            effect.src_bits =
                a[0].count_ones() + a[1].count_ones() + b[0].count_ones() + b[1].count_ones();
            effect.dest_toggles = hamming(old[0], new[0]) + hamming(old[1], new[1]);
            state.set_vreg(dst, new);
            Ok(())
        };

        match self.opcode() {
            Opcode::Add => int3(state, &mut effect, u64::wrapping_add)?,
            Opcode::Sub => int3(state, &mut effect, u64::wrapping_sub)?,
            Opcode::And => int3(state, &mut effect, |a, b| a & b)?,
            Opcode::Orr => int3(state, &mut effect, |a, b| a | b)?,
            Opcode::Eor => int3(state, &mut effect, |a, b| a ^ b)?,
            Opcode::Addi => int_imm(state, &mut effect, |a, i| a.wrapping_add(i as u64))?,
            Opcode::Subi => int_imm(state, &mut effect, |a, i| a.wrapping_sub(i as u64))?,
            Opcode::Lsl => int_imm(state, &mut effect, |a, i| a << (i as u32 & 63))?,
            Opcode::Lsr => int_imm(state, &mut effect, |a, i| a >> (i as u32 & 63))?,
            Opcode::Asr => int_imm(state, &mut effect, |a, i| {
                ((a as i64) >> (i as u32 & 63)) as u64
            })?,
            Opcode::Mov => {
                let dst = ops.reg(0)?;
                let a = state.reg(ops.reg(1)?);
                effect.src_bits = a.count_ones();
                effect.dest_toggles = hamming(state.reg(dst), a);
                state.set_reg(dst, a);
            }
            Opcode::Movi => {
                let dst = ops.reg(0)?;
                let value = ops.imm(1)? as u64;
                effect.dest_toggles = hamming(state.reg(dst), value);
                state.set_reg(dst, value);
            }
            Opcode::Mul => int3(state, &mut effect, u64::wrapping_mul)?,
            Opcode::Smulh => int3(state, &mut effect, |a, b| {
                (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64
            })?,
            Opcode::Mla => {
                let dst = ops.reg(0)?;
                let a = state.reg(ops.reg(1)?);
                let b = state.reg(ops.reg(2)?);
                let c = state.reg(ops.reg(3)?);
                let result = a.wrapping_mul(b).wrapping_add(c);
                effect.src_bits = a.count_ones() + b.count_ones() + c.count_ones();
                effect.dest_toggles = hamming(state.reg(dst), result);
                state.set_reg(dst, result);
            }
            Opcode::Sdiv => int3(state, &mut effect, |a, b| {
                let (a, b) = (a as i64, b as i64);
                if b == 0 {
                    0
                } else if a == i64::MIN && b == -1 {
                    a as u64 // ARM: overflow case returns the dividend pattern.
                } else {
                    (a / b) as u64
                }
            })?,
            Opcode::Udiv => int3(state, &mut effect, |a, b| a.checked_div(b).unwrap_or(0))?,
            Opcode::Fadd => fp2(state, &mut effect, |a, b| a + b)?,
            Opcode::Fsub => fp2(state, &mut effect, |a, b| a - b)?,
            Opcode::Fmul => fp2(state, &mut effect, |a, b| a * b)?,
            Opcode::Fdiv => fp2(state, &mut effect, |a, b| a / b)?,
            Opcode::Fmla => {
                // dst = dst + a * b (fused multiply-add accumulating in dst).
                let dst = ops.vreg(0)?;
                let a = state.vreg(ops.vreg(1)?);
                let b = state.vreg(ops.vreg(2)?);
                let old = state.vreg(dst);
                let result = sanitize(
                    f64::from_bits(a[0]).mul_add(f64::from_bits(b[0]), f64::from_bits(old[0])),
                );
                effect.src_bits = a[0].count_ones() + b[0].count_ones() + old[0].count_ones();
                let new = [result.to_bits(), old[1]];
                effect.dest_toggles = hamming(old[0], new[0]);
                state.set_vreg(dst, new);
            }
            Opcode::Fsqrt => {
                let dst = ops.vreg(0)?;
                let a = state.vreg(ops.vreg(1)?);
                let result = sanitize(f64::from_bits(a[0]).sqrt());
                let old = state.vreg(dst);
                let new = [result.to_bits(), old[1]];
                effect.src_bits = a[0].count_ones();
                effect.dest_toggles = hamming(old[0], new[0]);
                state.set_vreg(dst, new);
            }
            Opcode::Vadd => simd3(state, &mut effect, u64::wrapping_add)?,
            Opcode::Vsub => simd3(state, &mut effect, u64::wrapping_sub)?,
            Opcode::Vmul => simd3(state, &mut effect, u64::wrapping_mul)?,
            Opcode::Vmla => {
                let dst = ops.vreg(0)?;
                let a = state.vreg(ops.vreg(1)?);
                let b = state.vreg(ops.vreg(2)?);
                let old = state.vreg(dst);
                let new = [
                    old[0].wrapping_add(a[0].wrapping_mul(b[0])),
                    old[1].wrapping_add(a[1].wrapping_mul(b[1])),
                ];
                effect.src_bits =
                    a[0].count_ones() + a[1].count_ones() + b[0].count_ones() + b[1].count_ones();
                effect.dest_toggles = hamming(old[0], new[0]) + hamming(old[1], new[1]);
                state.set_vreg(dst, new);
            }
            Opcode::Vand => simd3(state, &mut effect, |a, b| a & b)?,
            Opcode::Veor => simd3(state, &mut effect, |a, b| a ^ b)?,
            Opcode::Vfadd => simd_fp(state, &mut effect, |a, b| a + b)?,
            Opcode::Vfmul => simd_fp(state, &mut effect, |a, b| a * b)?,
            Opcode::Vfmla => {
                let dst = ops.vreg(0)?;
                let a = state.vreg(ops.vreg(1)?);
                let b = state.vreg(ops.vreg(2)?);
                let old = state.vreg(dst);
                let new = [
                    sanitize(
                        f64::from_bits(a[0]).mul_add(f64::from_bits(b[0]), f64::from_bits(old[0])),
                    )
                    .to_bits(),
                    sanitize(
                        f64::from_bits(a[1]).mul_add(f64::from_bits(b[1]), f64::from_bits(old[1])),
                    )
                    .to_bits(),
                ];
                effect.src_bits =
                    a[0].count_ones() + a[1].count_ones() + b[0].count_ones() + b[1].count_ones();
                effect.dest_toggles = hamming(old[0], new[0]) + hamming(old[1], new[1]);
                state.set_vreg(dst, new);
            }
            Opcode::Vmovi => {
                let dst = ops.vreg(0)?;
                let new = [ops.imm(1)? as u64, ops.imm(2)? as u64];
                let old = state.vreg(dst);
                effect.dest_toggles = hamming(old[0], new[0]) + hamming(old[1], new[1]);
                state.set_vreg(dst, new);
            }
            Opcode::Ldr => {
                let dst = ops.reg(0)?;
                let base = state.reg(ops.reg(1)?);
                let addr = state.mem_addr(base, ops.imm(2)?, 8);
                let value = state.load(addr, 8);
                effect.src_bits = base.count_ones();
                effect.dest_toggles = hamming(state.reg(dst), value);
                effect.mem = Some(MemAccess {
                    addr,
                    width: 8,
                    is_store: false,
                });
                state.set_reg(dst, value);
            }
            Opcode::Str => {
                let value = state.reg(ops.reg(0)?);
                let base = state.reg(ops.reg(1)?);
                let addr = state.mem_addr(base, ops.imm(2)?, 8);
                effect.src_bits = value.count_ones() + base.count_ones();
                effect.dest_toggles = state.store(addr, 8, value);
                effect.mem = Some(MemAccess {
                    addr,
                    width: 8,
                    is_store: true,
                });
            }
            Opcode::Ldp => {
                let dst1 = ops.reg(0)?;
                let dst2 = ops.reg(1)?;
                let base = state.reg(ops.reg(2)?);
                let addr = state.mem_addr(base, ops.imm(3)?, 16);
                let v1 = state.load(addr, 8);
                let v2 = state.load(addr + 8, 8);
                effect.src_bits = base.count_ones();
                effect.dest_toggles = hamming(state.reg(dst1), v1) + hamming(state.reg(dst2), v2);
                effect.mem = Some(MemAccess {
                    addr,
                    width: 16,
                    is_store: false,
                });
                state.set_reg(dst1, v1);
                state.set_reg(dst2, v2);
            }
            Opcode::Stp => {
                let v1 = state.reg(ops.reg(0)?);
                let v2 = state.reg(ops.reg(1)?);
                let base = state.reg(ops.reg(2)?);
                let addr = state.mem_addr(base, ops.imm(3)?, 16);
                effect.src_bits = v1.count_ones() + v2.count_ones() + base.count_ones();
                effect.dest_toggles = state.store(addr, 8, v1) + state.store(addr + 8, 8, v2);
                effect.mem = Some(MemAccess {
                    addr,
                    width: 16,
                    is_store: true,
                });
            }
            Opcode::Vldr => {
                let dst = ops.vreg(0)?;
                let base = state.reg(ops.reg(1)?);
                let addr = state.mem_addr(base, ops.imm(2)?, 16);
                let new = [state.load(addr, 8), state.load(addr + 8, 8)];
                let old = state.vreg(dst);
                effect.src_bits = base.count_ones();
                effect.dest_toggles = hamming(old[0], new[0]) + hamming(old[1], new[1]);
                effect.mem = Some(MemAccess {
                    addr,
                    width: 16,
                    is_store: false,
                });
                state.set_vreg(dst, new);
            }
            Opcode::Vstr => {
                let value = state.vreg(ops.vreg(0)?);
                let base = state.reg(ops.reg(1)?);
                let addr = state.mem_addr(base, ops.imm(2)?, 16);
                effect.src_bits = value[0].count_ones() + value[1].count_ones() + base.count_ones();
                effect.dest_toggles =
                    state.store(addr, 8, value[0]) + state.store(addr + 8, 8, value[1]);
                effect.mem = Some(MemAccess {
                    addr,
                    width: 16,
                    is_store: true,
                });
            }
            Opcode::B => {
                effect.flow = Flow::Skip(ops.target(0)?);
                effect.branch_taken = true;
            }
            Opcode::Cbz => {
                let value = state.reg(ops.reg(0)?);
                effect.src_bits = value.count_ones();
                if value == 0 {
                    effect.flow = Flow::Skip(ops.target(1)?);
                    effect.branch_taken = true;
                }
            }
            Opcode::Cbnz => {
                let value = state.reg(ops.reg(0)?);
                effect.src_bits = value.count_ones();
                if value != 0 {
                    effect.flow = Flow::Skip(ops.target(1)?);
                    effect.branch_taken = true;
                }
            }
            Opcode::Nop => {}
        }
        Ok(effect)
    }
}

/// Clamps non-finite floating-point results back into a benign range.
///
/// Stress loops repeatedly multiply/accumulate; without this, values explode
/// to infinity within a few iterations, after which bit activity collapses
/// (inf op inf = inf: zero toggles). Real viruses avoid this by choosing
/// operand values carefully; we make the substrate forgiving instead so the
/// GA explores freely. NaN/inf fold to a fixed mid-range constant.
fn sanitize(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        1.234_567_890_123e10
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm;

    fn run(state: &mut ArchState, line: &str) -> Effect {
        asm::parse_line(line)
            .unwrap()
            .unwrap()
            .execute(state)
            .unwrap()
    }

    fn x(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    fn v(i: u8) -> VReg {
        VReg::new(i).unwrap()
    }

    #[test]
    fn integer_arithmetic() {
        let mut s = ArchState::new(64);
        s.set_reg(x(1), 10);
        s.set_reg(x(2), 3);
        run(&mut s, "ADD x0, x1, x2");
        assert_eq!(s.reg(x(0)), 13);
        run(&mut s, "SUB x0, x1, x2");
        assert_eq!(s.reg(x(0)), 7);
        run(&mut s, "MUL x0, x1, x2");
        assert_eq!(s.reg(x(0)), 30);
        run(&mut s, "MLA x0, x1, x2, x1");
        assert_eq!(s.reg(x(0)), 40);
    }

    #[test]
    fn logic_and_shifts() {
        let mut s = ArchState::new(64);
        s.set_reg(x(1), 0b1100);
        s.set_reg(x(2), 0b1010);
        run(&mut s, "AND x0, x1, x2");
        assert_eq!(s.reg(x(0)), 0b1000);
        run(&mut s, "ORR x0, x1, x2");
        assert_eq!(s.reg(x(0)), 0b1110);
        run(&mut s, "EOR x0, x1, x2");
        assert_eq!(s.reg(x(0)), 0b0110);
        run(&mut s, "LSL x0, x1, #2");
        assert_eq!(s.reg(x(0)), 0b110000);
        run(&mut s, "LSR x0, x1, #2");
        assert_eq!(s.reg(x(0)), 0b11);
        s.set_reg(x(3), (-8i64) as u64);
        run(&mut s, "ASR x0, x3, #1");
        assert_eq!(s.reg(x(0)) as i64, -4);
    }

    #[test]
    fn division_edge_cases() {
        let mut s = ArchState::new(64);
        s.set_reg(x(1), 7);
        s.set_reg(x(2), 0);
        run(&mut s, "UDIV x0, x1, x2");
        assert_eq!(s.reg(x(0)), 0, "divide by zero yields zero");
        run(&mut s, "SDIV x0, x1, x2");
        assert_eq!(s.reg(x(0)), 0);
        s.set_reg(x(1), i64::MIN as u64);
        s.set_reg(x(2), (-1i64) as u64);
        run(&mut s, "SDIV x0, x1, x2");
        assert_eq!(s.reg(x(0)), i64::MIN as u64, "overflow case preserved");
    }

    #[test]
    fn smulh_computes_high_bits() {
        let mut s = ArchState::new(64);
        s.set_reg(x(1), 1u64 << 40);
        s.set_reg(x(2), 1u64 << 40);
        run(&mut s, "SMULH x0, x1, x2");
        assert_eq!(s.reg(x(0)), 1u64 << 16);
    }

    #[test]
    fn scalar_fp_lane0_only() {
        let mut s = ArchState::new(64);
        s.set_vreg(v(1), [2.0f64.to_bits(), 777]);
        s.set_vreg(v(2), [3.0f64.to_bits(), 888]);
        s.set_vreg(v(0), [0, 999]);
        run(&mut s, "FMUL v0, v1, v2");
        let lanes = s.vreg(v(0));
        assert_eq!(f64::from_bits(lanes[0]), 6.0);
        assert_eq!(lanes[1], 999, "lane 1 preserved by scalar op");
    }

    #[test]
    fn fmla_accumulates_in_dst() {
        let mut s = ArchState::new(64);
        s.set_vreg(v(0), [10.0f64.to_bits(), 0]);
        s.set_vreg(v(1), [2.0f64.to_bits(), 0]);
        s.set_vreg(v(2), [3.0f64.to_bits(), 0]);
        run(&mut s, "FMLA v0, v1, v2");
        assert_eq!(f64::from_bits(s.vreg(v(0))[0]), 16.0);
    }

    #[test]
    fn fp_nonfinite_sanitized() {
        let mut s = ArchState::new(64);
        s.set_vreg(v(1), [f64::MAX.to_bits(), 0]);
        s.set_vreg(v(2), [f64::MAX.to_bits(), 0]);
        run(&mut s, "FMUL v0, v1, v2");
        assert!(f64::from_bits(s.vreg(v(0))[0]).is_finite());
        s.set_vreg(v(3), [(-1.0f64).to_bits(), 0]);
        run(&mut s, "FSQRT v0, v3");
        assert!(f64::from_bits(s.vreg(v(0))[0]).is_finite());
    }

    #[test]
    fn simd_both_lanes() {
        let mut s = ArchState::new(64);
        s.set_vreg(v(1), [1, 100]);
        s.set_vreg(v(2), [2, 200]);
        run(&mut s, "VADD v0, v1, v2");
        assert_eq!(s.vreg(v(0)), [3, 300]);
        run(&mut s, "VMLA v0, v1, v2");
        assert_eq!(s.vreg(v(0)), [5, 20300]);
        run(&mut s, "VEOR v0, v1, v1");
        assert_eq!(s.vreg(v(0)), [0, 0]);
    }

    #[test]
    fn simd_fp_both_lanes() {
        let mut s = ArchState::new(64);
        s.set_vreg(v(1), [2.0f64.to_bits(), 4.0f64.to_bits()]);
        s.set_vreg(v(2), [3.0f64.to_bits(), 5.0f64.to_bits()]);
        run(&mut s, "VFMUL v0, v1, v2");
        let lanes = s.vreg(v(0));
        assert_eq!(f64::from_bits(lanes[0]), 6.0);
        assert_eq!(f64::from_bits(lanes[1]), 20.0);
    }

    #[test]
    fn load_store_round_trip() {
        let mut s = ArchState::new(256);
        s.set_reg(x(1), 0xDEAD_BEEF_CAFE_F00D);
        s.set_reg(x(10), 64);
        let eff = run(&mut s, "STR x1, [x10, #8]");
        assert_eq!(
            eff.mem,
            Some(MemAccess {
                addr: 72,
                width: 8,
                is_store: true
            })
        );
        run(&mut s, "LDR x2, [x10, #8]");
        assert_eq!(s.reg(x(2)), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn pair_and_vector_memory() {
        let mut s = ArchState::new(256);
        s.set_reg(x(1), 111);
        s.set_reg(x(2), 222);
        s.set_reg(x(10), 32);
        run(&mut s, "STP x1, x2, [x10, #0]");
        run(&mut s, "LDP x3, x4, [x10, #0]");
        assert_eq!((s.reg(x(3)), s.reg(x(4))), (111, 222));
        run(&mut s, "VLDR v0, [x10, #0]");
        assert_eq!(s.vreg(v(0)), [111, 222]);
        s.set_vreg(v(1), [5, 6]);
        run(&mut s, "VSTR v1, [x10, #16]");
        run(&mut s, "LDP x5, x6, [x10, #16]");
        assert_eq!((s.reg(x(5)), s.reg(x(6))), (5, 6));
    }

    #[test]
    fn addresses_wrap_and_align() {
        let mut s = ArchState::new(64);
        s.set_reg(x(10), u64::MAX);
        let eff = run(&mut s, "LDR x0, [x10, #3]");
        let access = eff.mem.unwrap();
        assert!(access.addr < 64);
        assert_eq!(access.addr % 8, 0, "8-byte access is aligned");
        let eff = run(&mut s, "VLDR v0, [x10, #9]");
        assert_eq!(eff.mem.unwrap().addr % 16, 0, "16-byte access is aligned");
    }

    #[test]
    fn branch_semantics() {
        let mut s = ArchState::new(64);
        let eff = run(&mut s, "B #3");
        assert_eq!(eff.flow, Flow::Skip(3));
        assert!(eff.branch_taken);

        s.set_reg(x(1), 0);
        let eff = run(&mut s, "CBZ x1, #2");
        assert_eq!(eff.flow, Flow::Skip(2));
        let eff = run(&mut s, "CBNZ x1, #2");
        assert_eq!(eff.flow, Flow::Sequential);
        assert!(!eff.branch_taken);

        s.set_reg(x(1), 5);
        let eff = run(&mut s, "CBNZ x1, #1");
        assert!(eff.branch_taken);
    }

    #[test]
    fn toggles_reflect_bit_switching() {
        let mut s = ArchState::new(64);
        s.set_reg(x(1), CHECKERBOARD);
        s.set_reg(x(2), !CHECKERBOARD);
        // x0 starts 0; ORR of the two checkerboards = all ones: 64 toggles.
        let eff = run(&mut s, "ORR x0, x1, x2");
        assert_eq!(eff.dest_toggles, 64);
        assert_eq!(eff.src_bits, 64);
        // Re-running writes the same value: zero toggles.
        let eff = run(&mut s, "ORR x0, x1, x2");
        assert_eq!(eff.dest_toggles, 0);
    }

    #[test]
    fn store_toggles_count_memory_flips() {
        let mut s = ArchState::new(64);
        s.set_reg(x(1), u64::MAX);
        s.set_reg(x(10), 0);
        let eff = run(&mut s, "STR x1, [x10, #0]");
        assert_eq!(eff.dest_toggles, 64);
        let eff = run(&mut s, "STR x1, [x10, #0]");
        assert_eq!(eff.dest_toggles, 0);
    }

    #[test]
    fn mem_hash_tracks_stores_incrementally() {
        let rescan = |s: &ArchState| {
            let mut h = 0u64;
            for (addr, &byte) in s.mem().iter().enumerate() {
                h ^= mem_byte_mix(addr, byte);
            }
            h
        };

        let mut s = ArchState::new(256);
        assert_eq!(s.mem_hash(), 0, "zeroed memory hashes to zero");

        s.set_reg(x(1), CHECKERBOARD);
        s.set_reg(x(10), 8);
        run(&mut s, "STR x1, [x10, #0]");
        run(&mut s, "VSTR v0, [x10, #32]");
        s.set_reg(x(1), 7);
        run(&mut s, "STR x1, [x10, #120]");
        assert_eq!(s.mem_hash(), rescan(&s), "incremental hash matches rescan");

        // Overwriting with the same value keeps the hash unchanged.
        let before = s.mem_hash();
        run(&mut s, "STR x1, [x10, #120]");
        assert_eq!(s.mem_hash(), before);

        // Bulk writes invalidate and the next call rescans.
        s.fill_mem(0xAA);
        assert_eq!(s.mem_hash(), rescan(&s));
        s.mem_mut()[3] = 0x55;
        assert_eq!(s.mem_hash(), rescan(&s));

        // Equal images hash equal regardless of write history.
        let mut t = ArchState::new(256);
        t.mem_mut().copy_from_slice(s.mem());
        assert_eq!(t.mem_hash(), s.mem_hash());
    }

    #[test]
    fn reset_and_seeded_hash_match_fresh_state() {
        let mut s = ArchState::new(256);
        s.set_reg(x(1), CHECKERBOARD);
        s.set_vreg(crate::reg::VReg::new(2).unwrap(), [7, 9]);
        s.set_reg(x(10), 8);
        run(&mut s, "STR x1, [x10, #0]");
        s.reset();
        assert_eq!(s, ArchState::new(256), "reset == freshly constructed");
        assert_eq!(s.mem_hash(), 0);

        // A seeded hash behaves exactly like a rescanned one: stores keep
        // updating it incrementally from the seeded base.
        let mut reference = ArchState::new(256);
        reference.fill_mem(0x5A);
        let expected = reference.mem_hash();
        s.fill_mem(0x5A);
        s.seed_mem_hash(expected);
        assert_eq!(s.mem_hash(), expected);
        s.set_reg(x(1), 3);
        s.set_reg(x(10), 16);
        reference.set_reg(x(1), 3);
        reference.set_reg(x(10), 16);
        run(&mut s, "STR x1, [x10, #0]");
        run(&mut reference, "STR x1, [x10, #0]");
        assert_eq!(s.mem_hash(), reference.mem_hash());

        // reset_regs leaves memory (and its hash) alone.
        s.reset_regs();
        assert_eq!(s.reg(x(1)), 0);
        assert_eq!(s.mem_hash(), reference.mem_hash());
    }

    #[test]
    fn nop_has_no_effect() {
        let mut s = ArchState::new(64);
        let before = s.clone();
        let eff = Instruction::nop().execute(&mut s).unwrap();
        assert_eq!(s, before);
        assert_eq!(eff, Effect::default());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_mem_size_panics() {
        let _ = ArchState::new(100);
    }

    #[test]
    fn movi_and_vmovi() {
        let mut s = ArchState::new(64);
        run(&mut s, "MOVI x3, #0xAAAAAAAAAAAAAAAA");
        assert_eq!(s.reg(x(3)), CHECKERBOARD);
        run(&mut s, "VMOVI v2, #1, #2");
        assert_eq!(s.vreg(v(2)), [1, 2]);
    }
}
