//! Instructions: an opcode plus validated operands.

use crate::opcode::{Opcode, OperandSlot};
use crate::reg::{Reg, VReg};
use crate::IsaError;
use std::fmt;

/// One operand of an [`Instruction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// An integer register.
    Reg(Reg),
    /// A vector register.
    VReg(VReg),
    /// An immediate value (stored as the raw 64-bit pattern for `MOVI`-style
    /// initializers; interpreted as a signed offset for memory instructions).
    Imm(i64),
    /// A forward branch distance in instructions (1 = the next instruction).
    Target(u8),
}

impl Operand {
    /// Whether this operand can occupy the given slot kind.
    pub fn fits(self, slot: OperandSlot) -> bool {
        matches!(
            (self, slot),
            (Operand::Reg(_), OperandSlot::IntDst)
                | (Operand::Reg(_), OperandSlot::IntSrc)
                | (Operand::VReg(_), OperandSlot::VecDst)
                | (Operand::VReg(_), OperandSlot::VecSrc)
                | (Operand::Imm(_), OperandSlot::Imm)
                | (Operand::Target(_), OperandSlot::BranchTarget)
        )
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::VReg(v) => write!(f, "{v}"),
            Operand::Imm(i) => {
                // Large bit patterns read better in hex (register
                // initializers like 0xAAAA... checkerboards).
                if *i > 0xFFFF || *i < -0xFFFF {
                    write!(f, "#0x{:X}", *i as u64)
                } else {
                    write!(f, "#{i}")
                }
            }
            Operand::Target(t) => write!(f, "#{t}"),
        }
    }
}

/// A fully-instantiated instruction: opcode plus operands.
///
/// Instances are guaranteed (by [`Instruction::new`]) to have operand kinds
/// matching the opcode's [`slots`](Opcode::slots).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), gest_isa::IsaError> {
/// use gest_isa::{Instruction, Opcode, Operand, Reg};
/// let add = Instruction::new(
///     Opcode::Add,
///     vec![
///         Operand::Reg(Reg::new(1)?),
///         Operand::Reg(Reg::new(2)?),
///         Operand::Reg(Reg::new(3)?),
///     ],
/// )?;
/// assert_eq!(add.to_string(), "ADD x1, x2, x3");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Instruction {
    opcode: Opcode,
    operands: Vec<Operand>,
}

impl Instruction {
    /// Creates an instruction, validating operand count and kinds.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BadOperands`] if the operands do not match the
    /// opcode's signature.
    pub fn new(opcode: Opcode, operands: Vec<Operand>) -> Result<Instruction, IsaError> {
        let slots = opcode.slots();
        if operands.len() != slots.len() {
            return Err(IsaError::BadOperands {
                opcode,
                message: format!("expected {} operands, got {}", slots.len(), operands.len()),
            });
        }
        for (i, (&operand, &slot)) in operands.iter().zip(slots).enumerate() {
            if !operand.fits(slot) {
                return Err(IsaError::BadOperands {
                    opcode,
                    message: format!("operand {} must be a {}", i + 1, slot.describe()),
                });
            }
        }
        Ok(Instruction { opcode, operands })
    }

    /// Shorthand for a `NOP`.
    pub fn nop() -> Instruction {
        Instruction {
            opcode: Opcode::Nop,
            operands: Vec::new(),
        }
    }

    /// The instruction's opcode.
    pub fn opcode(&self) -> Opcode {
        self.opcode
    }

    /// The operands in signature order.
    pub fn operands(&self) -> &[Operand] {
        &self.operands
    }

    /// Replaces the operand at `index`, revalidating its kind.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BadOperands`] if `index` is out of range or the
    /// new operand does not fit the slot.
    pub fn set_operand(&mut self, index: usize, operand: Operand) -> Result<(), IsaError> {
        let slot = *self
            .opcode
            .slots()
            .get(index)
            .ok_or_else(|| IsaError::BadOperands {
                opcode: self.opcode,
                message: format!("operand index {index} out of range"),
            })?;
        if !operand.fits(slot) {
            return Err(IsaError::BadOperands {
                opcode: self.opcode,
                message: format!("operand {} must be a {}", index + 1, slot.describe()),
            });
        }
        self.operands[index] = operand;
        Ok(())
    }

    /// Integer registers written by this instruction.
    pub fn int_dsts(&self) -> impl Iterator<Item = Reg> + '_ {
        self.slot_regs(OperandSlot::IntDst)
    }

    /// Integer registers read by this instruction.
    pub fn int_srcs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.slot_regs(OperandSlot::IntSrc)
    }

    fn slot_regs(&self, wanted: OperandSlot) -> impl Iterator<Item = Reg> + '_ {
        self.opcode
            .slots()
            .iter()
            .zip(&self.operands)
            .filter_map(move |(&slot, &op)| match (slot == wanted, op) {
                (true, Operand::Reg(r)) => Some(r),
                _ => None,
            })
    }

    /// Vector registers written by this instruction.
    pub fn vec_dsts(&self) -> impl Iterator<Item = VReg> + '_ {
        self.slot_vregs(OperandSlot::VecDst)
    }

    /// Vector registers read by this instruction.
    pub fn vec_srcs(&self) -> impl Iterator<Item = VReg> + '_ {
        self.slot_vregs(OperandSlot::VecSrc)
    }

    fn slot_vregs(&self, wanted: OperandSlot) -> impl Iterator<Item = VReg> + '_ {
        self.opcode
            .slots()
            .iter()
            .zip(&self.operands)
            .filter_map(move |(&slot, &op)| match (slot == wanted, op) {
                (true, Operand::VReg(v)) => Some(v),
                _ => None,
            })
    }

    /// The branch distance for branch instructions, if any.
    pub fn branch_target(&self) -> Option<u8> {
        self.operands.iter().find_map(|op| match op {
            Operand::Target(t) => Some(*t),
            _ => None,
        })
    }

    /// Renders the instruction using a custom format string.
    ///
    /// The placeholders `op1`, `op2`, … are replaced by the corresponding
    /// operands, mirroring the paper's `format="LDR op1,[op2,#op3]"`
    /// configuration attribute. Placeholders are substituted
    /// highest-index-first so `op12` is not clobbered by `op1`.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), gest_isa::IsaError> {
    /// use gest_isa::{asm, Instruction};
    /// let ldr = asm::parse_line("LDR x1, [x2, #8]")
    ///     .map_err(|e| gest_isa::IsaError::Config(e.to_string()))?
    ///     .unwrap();
    /// assert_eq!(ldr.render_with("load op1 from op2+op3"), "load x1 from x2+#8");
    /// # Ok(())
    /// # }
    /// ```
    pub fn render_with(&self, format: &str) -> String {
        let mut out = format.to_owned();
        for index in (0..self.operands.len()).rev() {
            let placeholder = format!("op{}", index + 1);
            let value = self.operands[index].to_string();
            out = out.replace(&placeholder, &value);
        }
        out
    }
}

impl fmt::Display for Instruction {
    /// Renders in canonical assembler syntax (what the assembler parses).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.opcode.mnemonic())?;
        match self.opcode {
            // Memory instructions use bracketed address syntax.
            Opcode::Ldr | Opcode::Str | Opcode::Vldr | Opcode::Vstr => {
                write!(
                    f,
                    " {}, [{}, {}]",
                    self.operands[0], self.operands[1], self.operands[2]
                )
            }
            Opcode::Ldp | Opcode::Stp => write!(
                f,
                " {}, {}, [{}, {}]",
                self.operands[0], self.operands[1], self.operands[2], self.operands[3]
            ),
            _ => {
                for (i, op) in self.operands.iter().enumerate() {
                    if i == 0 {
                        write!(f, " {op}")?;
                    } else {
                        write!(f, ", {op}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(i: u8) -> Operand {
        Operand::Reg(Reg::new(i).unwrap())
    }

    fn vreg(i: u8) -> Operand {
        Operand::VReg(VReg::new(i).unwrap())
    }

    #[test]
    fn wrong_arity_rejected() {
        let err = Instruction::new(Opcode::Add, vec![reg(1), reg(2)]).unwrap_err();
        assert!(matches!(err, IsaError::BadOperands { .. }));
    }

    #[test]
    fn wrong_kind_rejected() {
        let err = Instruction::new(Opcode::Add, vec![reg(1), reg(2), vreg(3)]).unwrap_err();
        assert!(matches!(err, IsaError::BadOperands { .. }));
    }

    #[test]
    fn display_mem_syntax() {
        let ldr = Instruction::new(Opcode::Ldr, vec![reg(1), reg(10), Operand::Imm(8)]).unwrap();
        assert_eq!(ldr.to_string(), "LDR x1, [x10, #8]");
        let stp =
            Instruction::new(Opcode::Stp, vec![reg(1), reg(2), reg(10), Operand::Imm(16)]).unwrap();
        assert_eq!(stp.to_string(), "STP x1, x2, [x10, #16]");
    }

    #[test]
    fn display_branch_syntax() {
        let cbnz = Instruction::new(Opcode::Cbnz, vec![reg(4), Operand::Target(2)]).unwrap();
        assert_eq!(cbnz.to_string(), "CBNZ x4, #2");
    }

    #[test]
    fn display_large_imm_in_hex() {
        let movi = Instruction::new(
            Opcode::Movi,
            vec![reg(0), Operand::Imm(0xAAAA_AAAA_AAAA_AAAAu64 as i64)],
        )
        .unwrap();
        assert_eq!(movi.to_string(), "MOVI x0, #0xAAAAAAAAAAAAAAAA");
    }

    #[test]
    fn dst_src_queries() {
        let mla = Instruction::new(Opcode::Mla, vec![reg(1), reg(2), reg(3), reg(4)]).unwrap();
        assert_eq!(mla.int_dsts().count(), 1);
        assert_eq!(mla.int_srcs().count(), 3);
        let ldp =
            Instruction::new(Opcode::Ldp, vec![reg(1), reg(2), reg(10), Operand::Imm(0)]).unwrap();
        assert_eq!(ldp.int_dsts().count(), 2);
        assert_eq!(ldp.int_srcs().count(), 1);
    }

    #[test]
    fn set_operand_validates() {
        let mut add = Instruction::new(Opcode::Add, vec![reg(1), reg(2), reg(3)]).unwrap();
        add.set_operand(2, reg(5)).unwrap();
        assert_eq!(add.to_string(), "ADD x1, x2, x5");
        assert!(add.set_operand(2, vreg(0)).is_err());
        assert!(add.set_operand(9, reg(0)).is_err());
    }

    #[test]
    fn render_with_many_placeholders() {
        let mla = Instruction::new(Opcode::Mla, vec![reg(1), reg(2), reg(3), reg(4)]).unwrap();
        assert_eq!(mla.render_with("op1 = op2*op3 + op4"), "x1 = x2*x3 + x4");
    }

    #[test]
    fn branch_target_accessor() {
        let b = Instruction::new(Opcode::B, vec![Operand::Target(1)]).unwrap();
        assert_eq!(b.branch_target(), Some(1));
        assert_eq!(Instruction::nop().branch_target(), None);
    }
}
