//! Genome featurization for surrogate fitness models.
//!
//! Maps a GA individual (a slice of [`Gene`]s, i.e. the canonical codec
//! encoding's payload) to a small fixed-length numeric vector capturing
//! the properties the simulator's power/IPC/noise models respond to:
//! per-class instruction mix, dependency-distance structure, operand
//! toggle density, and register pressure. The vector feeds the runner's
//! online ridge-regression surrogate (`gest-core::surrogate`), which
//! screens candidates before full simulation.
//!
//! Everything here is pure integer/float arithmetic over the genes in
//! their stored order — no RNG, no ambient state — so featurization is
//! deterministic and identical across threads, lane widths, and resume.

use crate::def::Gene;
use crate::instruction::{Instruction, Operand};
use crate::opcode::InstrClass;
use crate::reg::{NUM_INT_REGS, NUM_VEC_REGS};

/// Length of the feature vector produced by [`featurize`], including the
/// trailing constant bias term.
pub const FEATURE_DIM: usize = 16;

/// A fixed-length genome feature vector; see [`featurize`] for the layout.
pub type FeatureVec = [f64; FEATURE_DIM];

/// Dependency-distance histogram buckets: distance 1, distance 2,
/// distances 3–4, and distance ≥ 5 (which includes every loop-carried
/// dependency, since those wrap the whole body).
const DIST_BUCKETS: usize = 4;

/// Featurizes one individual. Layout (canonical order):
///
/// | index | feature |
/// |-------|---------|
/// | 0–5   | instruction-class mix fractions, [`InstrClass::ALL`] order |
/// | 6–9   | dependency-distance histogram (1, 2, 3–4, ≥5/loop-carried) |
/// | 10    | operand toggle density: mean popcount of immediates / 64 |
/// | 11    | integer register pressure: distinct registers touched / 16 |
/// | 12    | vector register pressure: distinct registers touched / 16 |
/// | 13    | loop-carried source fraction |
/// | 14    | unique-definition fraction (the paper's simplicity metric) |
/// | 15    | constant bias term (always 1.0) |
///
/// Fractions are normalized so every component lies in `[0, 1]`,
/// keeping the downstream ridge regression scale-free. An empty genome
/// featurizes to all zeros plus the bias.
pub fn featurize(genes: &[Gene]) -> FeatureVec {
    let mut features = [0.0; FEATURE_DIM];
    features[FEATURE_DIM - 1] = 1.0;
    let instrs: Vec<&Instruction> = genes.iter().flat_map(|gene| gene.instrs.iter()).collect();
    if instrs.is_empty() {
        return features;
    }
    let total = instrs.len() as f64;

    // 0–5: class mix.
    for instr in &instrs {
        let class = instr.opcode().class();
        let slot = InstrClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("every class is in ALL");
        features[slot] += 1.0;
    }
    for share in features.iter_mut().take(InstrClass::ALL.len()) {
        *share /= total;
    }

    // 6–9 and 13: dependency distances (to the most recent producer of
    // each register source, wrapping around the loop body for
    // loop-carried dependencies) and the loop-carried fraction.
    let (histogram, carried, sources) = dependency_histogram(&instrs);
    if sources > 0 {
        for (bucket, &count) in histogram.iter().enumerate() {
            features[6 + bucket] = count as f64 / sources as f64;
        }
        features[13] = carried as f64 / sources as f64;
    }

    // 10: operand toggle density over immediate bit patterns.
    let mut imm_bits = 0u32;
    let mut imm_count = 0u32;
    for instr in &instrs {
        for operand in instr.operands() {
            if let Operand::Imm(value) = operand {
                imm_bits += (*value as u64).count_ones();
                imm_count += 1;
            }
        }
    }
    if imm_count > 0 {
        features[10] = f64::from(imm_bits) / (64.0 * f64::from(imm_count));
    }

    // 11–12: register pressure.
    let mut int_used = [false; NUM_INT_REGS as usize];
    let mut vec_used = [false; NUM_VEC_REGS as usize];
    for instr in &instrs {
        for reg in instr.int_dsts().chain(instr.int_srcs()) {
            int_used[reg.index() as usize] = true;
        }
        for reg in instr.vec_dsts().chain(instr.vec_srcs()) {
            vec_used[reg.index() as usize] = true;
        }
    }
    features[11] = int_used.iter().filter(|&&used| used).count() as f64 / f64::from(NUM_INT_REGS);
    features[12] = vec_used.iter().filter(|&&used| used).count() as f64 / f64::from(NUM_VEC_REGS);

    // 14: unique definitions.
    let mut defs: Vec<usize> = genes.iter().map(|gene| gene.def_index).collect();
    defs.sort_unstable();
    defs.dedup();
    features[14] = defs.len() as f64 / genes.len() as f64;

    features
}

/// Distance from each register source to its most recent producer,
/// bucketed; returns `(histogram, loop_carried, sources_with_producer)`.
///
/// The body is a loop, so a source with no earlier producer wraps around
/// to the *last* producer in the body (a loop-carried dependency of
/// distance `position + len - producer`). Sources never produced at all
/// (live-in registers) are skipped.
fn dependency_histogram(instrs: &[&Instruction]) -> ([u32; DIST_BUCKETS], u32, u32) {
    let len = instrs.len();
    let mut final_int_def = [None; NUM_INT_REGS as usize];
    let mut final_vec_def = [None; NUM_VEC_REGS as usize];
    for (position, instr) in instrs.iter().enumerate() {
        for reg in instr.int_dsts() {
            final_int_def[reg.index() as usize] = Some(position);
        }
        for reg in instr.vec_dsts() {
            final_vec_def[reg.index() as usize] = Some(position);
        }
    }

    let mut histogram = [0u32; DIST_BUCKETS];
    let mut carried = 0u32;
    let mut sources = 0u32;
    let mut int_def = [None; NUM_INT_REGS as usize];
    let mut vec_def = [None; NUM_VEC_REGS as usize];
    let mut record = |distance: usize, is_carried: bool| {
        sources += 1;
        if is_carried {
            carried += 1;
        }
        let bucket = match distance {
            0 | 1 => 0,
            2 => 1,
            3 | 4 => 2,
            _ => 3,
        };
        histogram[bucket] += 1;
    };
    for (position, instr) in instrs.iter().enumerate() {
        for reg in instr.int_srcs() {
            let slot = reg.index() as usize;
            match (int_def[slot], final_int_def[slot]) {
                (Some(producer), _) => record(position - producer, false),
                (None, Some(producer)) => record(position + len - producer, true),
                (None, None) => {}
            }
        }
        for reg in instr.vec_srcs() {
            let slot = reg.index() as usize;
            match (vec_def[slot], final_vec_def[slot]) {
                (Some(producer), _) => record(position - producer, false),
                (None, Some(producer)) => record(position + len - producer, true),
                (None, None) => {}
            }
        }
        for reg in instr.int_dsts() {
            int_def[reg.index() as usize] = Some(position);
        }
        for reg in instr.vec_dsts() {
            vec_def[reg.index() as usize] = Some(position);
        }
    }
    (histogram, carried, sources)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm;

    fn gene_of(line: &str) -> Gene {
        Gene {
            def_index: 0,
            instrs: vec![asm::parse_line(line).unwrap().unwrap()],
        }
    }

    #[test]
    fn empty_genome_is_bias_only() {
        let features = featurize(&[]);
        assert_eq!(features[FEATURE_DIM - 1], 1.0);
        assert_eq!(features[..FEATURE_DIM - 1], [0.0; FEATURE_DIM - 1]);
    }

    #[test]
    fn class_mix_and_pressure_are_fractions() {
        let genes = vec![
            gene_of("ADD x1, x2, x3"),
            gene_of("ADD x4, x1, x1"),
            gene_of("NOP"),
            gene_of("NOP"),
        ];
        let features = featurize(&genes);
        // Two ShortInt (first ALL slot), two Nop (last ALL slot).
        assert!((features[0] - 0.5).abs() < 1e-12);
        assert!((features[5] - 0.5).abs() < 1e-12);
        // Registers x1..x4: 4 of 16.
        assert!((features[11] - 0.25).abs() < 1e-12);
        assert_eq!(features[12], 0.0);
        assert_eq!(features[FEATURE_DIM - 1], 1.0);
        for value in features {
            assert!((0.0..=1.0).contains(&value), "{features:?}");
        }
    }

    #[test]
    fn dependency_distances_wrap_the_loop() {
        // x1 is written at position 1 and read at position 0: a
        // loop-carried dependency of distance 0 + 2 - 1 = 1.
        let genes = vec![gene_of("ADD x2, x1, x1"), gene_of("ADD x1, x3, x3")];
        let features = featurize(&genes);
        assert!(features[6] > 0.0, "distance-1 bucket: {features:?}");
        assert!(features[13] > 0.0, "loop-carried fraction: {features:?}");
    }

    #[test]
    fn identical_genomes_featurize_identically() {
        let genes = vec![gene_of("MUL x5, x6, x7"), gene_of("ADD x1, x5, x5")];
        let a = featurize(&genes);
        let b = featurize(&genes.clone());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
