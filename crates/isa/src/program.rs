//! Complete runnable programs: initialization plus a stress loop body.

use crate::instruction::Instruction;
use crate::semantics::{ArchState, Flow, CHECKERBOARD};
use crate::ExecError;
use std::fmt;

/// How the data-memory buffer is initialized before a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemInit {
    /// All zero bytes.
    #[default]
    Zero,
    /// A repeating byte value.
    Fill(u8),
    /// The `0xAA` checkerboard the paper's templates use to maximize bit
    /// switching on loads.
    Checkerboard,
}

impl MemInit {
    /// Applies the initialization to a state's memory buffer.
    pub fn apply(self, state: &mut ArchState) {
        state.fill_mem(self.fill_byte());
    }

    /// The repeating byte the initialization fills memory with. Two
    /// `MemInit`s with equal fill bytes produce identical images (and
    /// identical [`ArchState::mem_hash`] values) for equal buffer sizes.
    pub fn fill_byte(self) -> u8 {
        match self {
            MemInit::Zero => 0,
            MemInit::Fill(byte) => byte,
            MemInit::Checkerboard => 0xAA,
        }
    }
}

/// A runnable program: one-shot initialization code plus the loop body that
/// the simulator executes repeatedly.
///
/// This is the materialized form of a template with the GA individual
/// substituted for `#loop_code` (paper §III.B.2).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Display name (benchmark name or individual id).
    pub name: String,
    /// Register/memory initialization, executed once, straight-line.
    pub init: Vec<Instruction>,
    /// The loop body, executed repeatedly by the simulator.
    pub body: Vec<Instruction>,
    /// Memory-buffer initialization.
    pub mem_init: MemInit,
}

impl Program {
    /// Creates a program with empty init and the given body.
    pub fn from_body(name: impl Into<String>, body: Vec<Instruction>) -> Program {
        Program {
            name: name.into(),
            init: Vec::new(),
            body,
            mem_init: MemInit::Zero,
        }
    }

    /// Applies memory initialization and executes the init block against
    /// `state`. Branches in the init block are honoured (taken skips).
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError`] from instruction execution.
    pub fn apply_init(&self, state: &mut ArchState) -> Result<(), ExecError> {
        self.mem_init.apply(state);
        self.apply_init_instrs(state)
    }

    /// Executes just the init instruction stream, without the memory
    /// fill. Batched simulation applies [`MemInit`] itself (seeding a
    /// shared content hash for the fill pattern) and then calls this.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError`] from instruction execution.
    pub fn apply_init_instrs(&self, state: &mut ArchState) -> Result<(), ExecError> {
        let mut pc = 0usize;
        while pc < self.init.len() {
            let effect = self.init[pc].execute(state)?;
            pc += 1;
            if let Flow::Skip(n) = effect.flow {
                pc += n as usize;
            }
        }
        Ok(())
    }

    /// The canonical checkerboard value used by stress templates.
    pub const CHECKERBOARD: u64 = CHECKERBOARD;

    /// Total instruction count (init + body).
    pub fn len(&self) -> usize {
        self.init.len() + self.body.len()
    }

    /// Whether the program contains no instructions at all.
    pub fn is_empty(&self) -> bool {
        self.init.is_empty() && self.body.is_empty()
    }
}

impl fmt::Display for Program {
    /// Renders as template-style assembly source.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; program: {}", self.name)?;
        match self.mem_init {
            MemInit::Zero => writeln!(f, ".mem zero")?,
            MemInit::Fill(byte) => writeln!(f, ".mem fill 0x{byte:02X}")?,
            MemInit::Checkerboard => writeln!(f, ".mem checkerboard")?,
        }
        writeln!(f, ".init")?;
        for instr in &self.init {
            writeln!(f, "{instr}")?;
        }
        writeln!(f, ".loop")?;
        for instr in &self.body {
            writeln!(f, "{instr}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm;
    use crate::reg::Reg;

    #[test]
    fn init_runs_straight_line() {
        let program = Program {
            name: "t".into(),
            init: asm::parse_block("MOVI x1, #5\nMOVI x2, #7\nADD x3, x1, x2").unwrap(),
            body: vec![],
            mem_init: MemInit::Checkerboard,
        };
        let mut state = ArchState::new(64);
        program.apply_init(&mut state).unwrap();
        assert_eq!(state.reg(Reg::new(3).unwrap()), 12);
        assert!(state.mem().iter().all(|&b| b == 0xAA));
    }

    #[test]
    fn init_honours_branches() {
        // CBZ x0 (zero) skips the poison MOVI.
        let program = Program {
            name: "t".into(),
            init: asm::parse_block("CBZ x0, #1\nMOVI x1, #99\nMOVI x2, #1").unwrap(),
            body: vec![],
            mem_init: MemInit::Zero,
        };
        let mut state = ArchState::new(64);
        program.apply_init(&mut state).unwrap();
        assert_eq!(state.reg(Reg::new(1).unwrap()), 0, "skipped");
        assert_eq!(state.reg(Reg::new(2).unwrap()), 1);
    }

    #[test]
    fn init_branch_past_end_terminates() {
        let program = Program {
            name: "t".into(),
            init: asm::parse_block("B #200").unwrap(),
            body: vec![],
            mem_init: MemInit::Zero,
        };
        let mut state = ArchState::new(64);
        program.apply_init(&mut state).unwrap();
    }

    #[test]
    fn display_emits_sections() {
        let program = Program {
            name: "demo".into(),
            init: asm::parse_block("MOVI x1, #1").unwrap(),
            body: asm::parse_block("ADD x1, x1, x1").unwrap(),
            mem_init: MemInit::Fill(0x55),
        };
        let text = program.to_string();
        assert!(text.contains(".mem fill 0x55"));
        assert!(text.contains(".init"));
        assert!(text.contains(".loop"));
        assert!(text.contains("ADD x1, x1, x1"));
    }

    #[test]
    fn len_and_empty() {
        let program = Program::from_body("x", asm::parse_block("NOP\nNOP").unwrap());
        assert_eq!(program.len(), 2);
        assert!(!program.is_empty());
        assert!(Program::default().is_empty());
    }
}
