//! Shared harness code for the experiment binaries.
//!
//! Each `src/bin/*.rs` binary regenerates one table or figure of the paper
//! (see DESIGN.md for the full index). This library holds the common
//! plumbing: paper-scale search budgets, workload measurement, and the
//! normalized-bar table rendering the figures use.

use gest_core::{GestConfig, GestError, GestRun, RunSummary};
use gest_sim::{MachineConfig, RunConfig, RunResult, Simulator};
use gest_workloads::Workload;

/// Search budget used by the headline experiments. Matches the paper's
/// defaults (population 50, "70–100 generations"); override with the
/// `GEST_FAST=1` environment variable for a quick smoke run.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Individuals per generation.
    pub population: usize,
    /// Loop length.
    pub individual: usize,
    /// Generations to run.
    pub generations: u32,
}

impl Budget {
    /// The paper-scale budget (or a fast one when `GEST_FAST` is set).
    pub fn paper() -> Budget {
        // Empty or "0" means unset, so `GEST_FAST= cmd` leftovers don't
        // silently shrink budgets.
        let fast = std::env::var("GEST_FAST").is_ok_and(|v| !v.is_empty() && v != "0");
        if fast {
            Budget {
                population: 16,
                individual: 20,
                generations: 12,
            }
        } else {
            Budget {
                population: 50,
                individual: 50,
                generations: 80,
            }
        }
    }

    /// Same selection logic with an explicit individual (loop) size, for
    /// the dI/dt experiments where the loop length follows the PDN
    /// resonance rule of thumb.
    pub fn paper_with_individual(individual: usize) -> Budget {
        Budget {
            individual,
            ..Budget::paper()
        }
    }
}

/// The measurement window used when comparing finished viruses and
/// workloads (longer than the GA's inner-loop window for tighter
/// estimates).
pub fn compare_run_config() -> RunConfig {
    RunConfig {
        max_iterations: 600,
        max_cycles: 30_000,
        ..RunConfig::default()
    }
}

/// Runs one GA search and returns its summary.
///
/// # Errors
///
/// Propagates framework errors.
pub fn evolve(
    machine: &str,
    measurement: &str,
    fitness: &str,
    budget: Budget,
    seed: u64,
) -> Result<RunSummary, GestError> {
    let config = GestConfig::builder(machine)
        .measurement(measurement)
        .fitness(fitness)
        .population_size(budget.population)
        .individual_size(budget.individual)
        .generations(budget.generations)
        .seed(seed)
        .build()?;
    GestRun::builder().config(config).build()?.run()
}

/// Measures a program on a machine with the comparison window.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn measure(
    machine: &MachineConfig,
    program: &gest_isa::Program,
) -> Result<RunResult, GestError> {
    Ok(Simulator::new(machine.clone()).run(program, &compare_run_config())?)
}

/// One bar of a figure: a label and its measured value.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Workload / virus name.
    pub label: String,
    /// Raw measured value.
    pub value: f64,
}

/// Renders a figure as an ASCII bar chart normalized to `baseline_label`
/// (the paper normalizes Figure 5/6 to coremark and Figure 7 to
/// bodytrack).
///
/// # Panics
///
/// Panics if the baseline label is missing.
pub fn render_normalized(title: &str, unit: &str, bars: &[Bar], baseline_label: &str) -> String {
    let baseline = bars
        .iter()
        .find(|b| b.label == baseline_label)
        .unwrap_or_else(|| panic!("baseline {baseline_label:?} missing"))
        .value;
    let max_norm = bars
        .iter()
        .map(|b| b.value / baseline)
        .fold(0.0f64, f64::max);
    let mut out = format!("{title}\n(normalized to {baseline_label}; raw unit: {unit})\n");
    for bar in bars {
        let norm = bar.value / baseline;
        let width = ((norm / max_norm) * 46.0).round() as usize;
        out.push_str(&format!(
            "{:<24} {:>6.3}  |{:<46}| ({:.4} {unit})\n",
            bar.label,
            norm,
            "#".repeat(width),
            bar.value
        ));
    }
    out
}

/// Measures a set of workloads into bars using the given metric extractor.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn workload_bars(
    machine: &MachineConfig,
    workloads: &[Workload],
    metric: impl Fn(&RunResult) -> f64,
) -> Result<Vec<Bar>, GestError> {
    workloads
        .iter()
        .map(|w| {
            let result = measure(machine, &w.program)?;
            Ok(Bar {
                label: w.name.to_owned(),
                value: metric(&result),
            })
        })
        .collect()
}

/// Renders an instruction-breakdown row in the paper's Table III/IV
/// format.
pub fn breakdown_row(label: &str, breakdown: [usize; 6], total_label: bool) -> String {
    let mut row = format!(
        "{:<20} {:>9} {:>9} {:>11} {:>5} {:>7}",
        label, breakdown[0], breakdown[1], breakdown[2], breakdown[3], breakdown[4]
    );
    if total_label {
        let total: usize = breakdown.iter().sum();
        row.push_str(&format!(" {:>6}", total));
    }
    row
}

/// Header matching [`breakdown_row`].
pub fn breakdown_header(total_label: bool) -> String {
    let mut header = format!(
        "{:<20} {:>9} {:>9} {:>11} {:>5} {:>7}",
        "", "ShortInt", "LongInt", "Float/SIMD", "Mem", "Branch"
    );
    if total_label {
        header.push_str(&format!(" {:>6}", "Total"));
    }
    header
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_normalized_marks_baseline_as_one() {
        let bars = vec![
            Bar {
                label: "coremark".into(),
                value: 2.0,
            },
            Bar {
                label: "virus".into(),
                value: 3.0,
            },
        ];
        let text = render_normalized("t", "W", &bars, "coremark");
        assert!(text.contains(" 1.000"), "{text}");
        assert!(text.contains(" 1.500"), "{text}");
    }

    #[test]
    #[should_panic(expected = "missing")]
    fn missing_baseline_panics() {
        let bars = vec![Bar {
            label: "x".into(),
            value: 1.0,
        }];
        let _ = render_normalized("t", "W", &bars, "coremark");
    }

    #[test]
    fn breakdown_rows_align() {
        let header = breakdown_header(true);
        let row = breakdown_row("virus", [4, 5, 22, 18, 1, 0], true);
        assert_eq!(header.len(), row.len());
        assert!(row.contains("22"));
    }

    #[test]
    fn budget_fast_override() {
        // Can't set env safely in parallel tests; just check the default
        // shape.
        let budget = Budget {
            population: 50,
            individual: 50,
            generations: 80,
        };
        assert!(budget.generations >= 70 || std::env::var_os("GEST_FAST").is_some());
    }
}
pub mod experiments;
