//! One function per paper table/figure. Each returns a printable report;
//! the `src/bin` wrappers print them and `all_experiments` concatenates
//! everything into an EXPERIMENTS-style document.

use crate::{
    breakdown_header, breakdown_row, compare_run_config, evolve, measure, render_normalized,
    workload_bars, Bar, Budget,
};
use gest_core::GestError;
use gest_ga::GaConfig;
use gest_sim::{characterize_vmin, MachineConfig, VminConfig};
use gest_workloads as workloads;
use std::fmt::Write as _;

/// Table I: the GA parameter defaults.
pub fn table1() -> String {
    let config = GaConfig::default();
    let mut out = String::from("Table I — GA parameters (defaults)\n");
    let _ = writeln!(out, "{:<46} Default Values", "Parameter");
    let _ = writeln!(out, "{:<46} {}", "population_size", config.population_size);
    let _ = writeln!(
        out,
        "{:<46} 15-50",
        "Individual Size (number of loop instructions)"
    );
    let _ = writeln!(out, "{:<46} 0.02 - 0.08 (1/loop length)", "mutation_rate");
    let _ = writeln!(out, "{:<46} {:?}", "crossover_operator", config.crossover);
    let _ = writeln!(
        out,
        "{:<46} {}",
        "elitism (best promoted to next generation)", config.elitism
    );
    let _ = writeln!(
        out,
        "{:<46} {:?}",
        "parent_selection_method", config.selection
    );
    out
}

fn power_virus_bars(
    target: &MachineConfig,
    own_seed: u64,
    other_machine: &str,
    other_seed: u64,
    own_label: &str,
    other_label: &str,
) -> Result<Vec<Bar>, GestError> {
    let budget = Budget::paper();
    let own = evolve(&target.name, "power", "default", budget, own_seed)?;
    let other = evolve(other_machine, "power", "default", budget, other_seed)?;

    let mut bars = workload_bars(
        target,
        &[
            workloads::coremark(),
            workloads::fdct(),
            workloads::imdct(),
            if target.name == "cortex-a15" {
                workloads::a15_manual_stress()
            } else {
                workloads::a7_manual_stress()
            },
        ],
        |r| r.avg_power_w,
    )?;
    bars.push(Bar {
        label: other_label.to_owned(),
        value: measure(target, &other.best_program)?.avg_power_w,
    });
    bars.push(Bar {
        label: own_label.to_owned(),
        value: measure(target, &own.best_program)?.avg_power_w,
    });
    Ok(bars)
}

/// Figure 5: Cortex-A15 power results, normalized to coremark.
pub fn fig5() -> Result<String, GestError> {
    let machine = MachineConfig::cortex_a15();
    let bars = power_virus_bars(&machine, 15, "cortex-a7", 7, "A15_GA_virus", "A7_GA_virus")?;
    Ok(render_normalized(
        "Figure 5 — Cortex-A15 power results",
        "W",
        &bars,
        "coremark",
    ))
}

/// Figure 6: Cortex-A7 power results, normalized to coremark.
pub fn fig6() -> Result<String, GestError> {
    let machine = MachineConfig::cortex_a7();
    let bars = power_virus_bars(&machine, 7, "cortex-a15", 15, "A7_GA_virus", "A15_GA_virus")?;
    Ok(render_normalized(
        "Figure 6 — Cortex-A7 power results",
        "W",
        &bars,
        "coremark",
    ))
}

/// Table III: instruction breakdown of the Cortex-A15 and Cortex-A7 power
/// viruses.
pub fn table3() -> Result<String, GestError> {
    let budget = Budget::paper();
    let a15 = evolve("cortex-a15", "power", "default", budget, 15)?;
    let a7 = evolve("cortex-a7", "power", "default", budget, 7)?;
    let mut out = String::from("Table III — instruction breakdown of the A15/A7 power viruses\n");
    let _ = writeln!(out, "{}", breakdown_header(true));
    let _ = writeln!(
        out,
        "{}",
        breakdown_row("Cortex-A15", a15.best_breakdown(), true)
    );
    let _ = writeln!(
        out,
        "{}",
        breakdown_row("Cortex-A7", a7.best_breakdown(), true)
    );
    let _ = writeln!(
        out,
        "\n(paper: A15 virus dominated by Float/SIMD+Mem with 1 branch; A7 virus \
         uses many more branches — {} vs {} branches here)",
        a15.best_breakdown()[4],
        a7.best_breakdown()[4]
    );
    Ok(out)
}

/// Figure 7: X-Gene2 chip temperature, normalized to bodytrack.
pub fn fig7() -> Result<String, GestError> {
    let machine = MachineConfig::xgene2();
    let budget = Budget::paper();
    let power_virus = evolve("xgene2", "temperature", "default", budget, 2)?;
    let ipc_virus = evolve("xgene2", "ipc", "default", budget, 4)?;

    let mut suite = workloads::suite(workloads::Suite::Parsec);
    suite.extend(workloads::suite(workloads::Suite::Nas));
    let mut bars = workload_bars(&machine, &suite, |r| r.temperature_c)?;
    bars.push(Bar {
        label: "IPCvirus".into(),
        value: measure(&machine, &ipc_virus.best_program)?.temperature_c,
    });
    bars.push(Bar {
        label: "powerVirus".into(),
        value: measure(&machine, &power_virus.best_program)?.temperature_c,
    });
    Ok(render_normalized(
        "Figure 7 — X-Gene2 chip temperature results",
        "degC",
        &bars,
        "bodytrack",
    ))
}

/// Table IV: powerVirus vs powerVirusSimple vs IPCvirus comparison.
pub fn table4() -> Result<String, GestError> {
    let machine = MachineConfig::xgene2();
    let budget = Budget::paper();
    let power_virus = evolve("xgene2", "temperature", "default", budget, 2)?;
    // Equation 1 needs I_T and MAX_T; per the paper, "the maximum
    // temperature can be obtained ... from a previous GA run" — use the
    // power virus's measured temperature, and idle = static-power steady
    // state.
    let idle_c = machine.thermal.steady_state_c(machine.energy.static_w);
    let max_c = power_virus.best.measurements[0];
    let simple_config = gest_core::GestConfig::builder("xgene2")
        .measurement("temperature")
        .fitness_impl(std::sync::Arc::new(gest_core::TempSimplicityFitness::new(
            idle_c, max_c,
        )))
        .population_size(budget.population)
        .individual_size(budget.individual)
        .generations(budget.generations)
        .seed(2)
        .build()?;
    let simple_virus = gest_core::GestRun::builder()
        .config(simple_config)
        .build()?
        .run()?;
    let ipc_virus = evolve("xgene2", "ipc", "default", budget, 4)?;

    let reference = measure(&machine, &power_virus.best_program)?;
    let mut out =
        String::from("Table IV — power virus, simple power virus and IPC virus comparison\n");
    let _ = writeln!(
        out,
        "{} {:>9} {:>10} {:>10} {:>9}",
        breakdown_header(false),
        "Rel.IPC",
        "Rel.Power",
        "Rel.Temp",
        "#Unique"
    );
    for (label, summary) in [
        ("powerVirus", &power_virus),
        ("powerVirusSimple", &simple_virus),
        ("IPCvirus", &ipc_virus),
    ] {
        let result = measure(&machine, &summary.best_program)?;
        let rel_temp = (result.temperature_c - machine.thermal.ambient_c)
            / (reference.temperature_c - machine.thermal.ambient_c);
        let _ = writeln!(
            out,
            "{} {:>9.2} {:>10.2} {:>10.2} {:>9}",
            breakdown_row(label, summary.best_breakdown(), false),
            result.ipc / reference.ipc,
            result.avg_power_w / reference.avg_power_w,
            rel_temp,
            summary.best_unique_defs()
        );
    }
    let _ = writeln!(
        out,
        "\n(paper: powerVirusSimple matches powerVirus power/temperature with 13 vs 21 \
         unique instructions; IPCvirus trades power for IPC)"
    );
    Ok(out)
}

fn didt_virus() -> Result<gest_core::RunSummary, GestError> {
    let machine = MachineConfig::athlon_x4();
    let pdn = machine.pdn.expect("athlon has a PDN");
    let loop_len =
        GaConfig::didt_loop_length(machine.clock_hz, pdn.resonance_hz(), machine.max_ipc());
    evolve(
        "athlon-x4",
        "voltage_noise",
        "default",
        Budget::paper_with_individual(loop_len),
        8,
    )
}

fn athlon_comparison_set() -> Vec<workloads::Workload> {
    vec![
        workloads::coremark(),
        workloads::linpack(),
        workloads::amd_stability(),
        workloads::prime95(),
    ]
}

/// Figure 8: max-min voltage noise on the AMD Athlon model.
pub fn fig8() -> Result<String, GestError> {
    let machine = MachineConfig::athlon_x4();
    let virus = didt_virus()?;
    let mut bars = workload_bars(&machine, &athlon_comparison_set(), |r| {
        r.voltage_peak_to_peak().expect("athlon has a PDN") * 1e3
    })?;
    bars.push(Bar {
        label: "GA_dIdt_virus".into(),
        value: measure(&machine, &virus.best_program)?
            .voltage_peak_to_peak()
            .expect("athlon has a PDN")
            * 1e3,
    });
    Ok(render_normalized(
        "Figure 8 — voltage-noise (max-min) results on the AMD Athlon model",
        "mV",
        &bars,
        "coremark",
    ))
}

/// Figure 9: V_MIN results on the AMD Athlon model (12.5 mV steps).
pub fn fig9() -> Result<String, GestError> {
    let machine = MachineConfig::athlon_x4();
    let virus = didt_virus()?;
    let run_config = compare_run_config();
    let vmin_config = VminConfig::default();
    let mut out =
        String::from("Figure 9 — V_MIN results on the AMD Athlon model (12.5 mV steps)\n");
    let _ = writeln!(
        out,
        "{:<24} {:>10} {:>14}",
        "workload", "vmin (V)", "margin (mV)"
    );
    let nominal = machine.pdn.expect("athlon has a PDN").vdd;
    let mut rows: Vec<(String, f64)> = Vec::new();
    for workload in athlon_comparison_set() {
        let vmin = characterize_vmin(&machine, &workload.program, &run_config, &vmin_config)?;
        rows.push((workload.name.to_owned(), vmin.vmin_v));
    }
    let virus_vmin = characterize_vmin(&machine, &virus.best_program, &run_config, &vmin_config)?;
    rows.push(("GA_dIdt_virus".into(), virus_vmin.vmin_v));
    for (label, vmin) in &rows {
        let _ = writeln!(
            out,
            "{:<24} {:>10.4} {:>14.1}",
            label,
            vmin,
            (nominal - vmin) * 1e3
        );
    }
    let _ = writeln!(
        out,
        "\n(the dI/dt virus fails at the highest supply voltage, making it the best \
         stability test — higher V_MIN = stricter test)"
    );
    Ok(out)
}

/// Table V: related-work comparison (qualitative; reprinted).
pub fn table5() -> String {
    let mut out = String::from("Table V — comparison of related work on GA frameworks\n");
    let rows = [
        (
            "Framework",
            "OptimizationType",
            "Language",
            "Evaluated-On",
            "Metrics",
            "Component",
        ),
        (
            "AUDIT",
            "Instruction-Level",
            "x86 ISA",
            "HW/Simulator",
            "dI/dt",
            "CPU",
        ),
        (
            "MAMPO",
            "Abstract-Workload",
            "SPARC ISA",
            "Simulator",
            "power",
            "CPU+DRAM",
        ),
        (
            "Joshi et al.",
            "Abstract-Workload",
            "Alpha ISA",
            "Simulator",
            "power",
            "CPU",
        ),
        (
            "Powermark",
            "Abstract-Workload",
            "C",
            "Real-Hardware",
            "power",
            "Full-System",
        ),
        (
            "GeST",
            "Instruction-Level",
            "ARM,x86",
            "Real-Hardware",
            "dI/dt,power",
            "CPU",
        ),
        (
            "gest-rs (this repo)",
            "Instruction-Level",
            "synthetic ISA",
            "Simulated-HW",
            "dI/dt,power,IPC,temp",
            "CPU",
        ),
    ];
    for (a, b, c, d, e, f) in rows {
        let _ = writeln!(out, "{a:<20} {b:<18} {c:<13} {d:<14} {e:<20} {f}");
    }
    out
}

/// Convergence curves (paper §IV runtime discussion: significant gains
/// within 70–100 generations).
pub fn convergence() -> Result<String, GestError> {
    let mut out = String::from("Convergence — best fitness per generation\n");
    for (machine, measurement, seed) in [
        ("cortex-a15", "power", 15u64),
        ("athlon-x4", "voltage_noise", 8),
    ] {
        let summary = evolve(machine, measurement, "default", Budget::paper(), seed)?;
        let series = summary.history.best_series();
        let _ = writeln!(out, "\n{machine} / {measurement}:");
        for (generation, value) in series.iter().enumerate() {
            if generation % 5 == 0 || generation + 1 == series.len() {
                let _ = writeln!(out, "  gen {generation:>3}: {value:.5}");
            }
        }
        let first = series.first().copied().unwrap_or(0.0);
        let last = series.last().copied().unwrap_or(0.0);
        let _ = writeln!(
            out,
            "  improvement over random seed: {:.1}%",
            100.0 * (last / first - 1.0)
        );
    }
    Ok(out)
}

/// Design-choice ablations called out in DESIGN.md.
pub fn ablations() -> Result<String, GestError> {
    let mut out = String::from("Ablations\n");

    // 1. One-point vs uniform crossover (paper §III.A prefers one-point,
    // "especially ... for maximum power and maximum dI/dt search" where
    // instruction order matters). Compare on both objectives, averaged
    // over several seeds.
    let _ = writeln!(
        out,
        "\n[1] crossover operator (mean best over seeds 33..36):"
    );
    for (machine, measurement, unit, scale) in [
        ("cortex-a15", "power", "W", 1.0),
        ("athlon-x4", "voltage_noise", "mV", 1e3),
    ] {
        for crossover in [
            gest_ga::CrossoverOp::OnePoint,
            gest_ga::CrossoverOp::Uniform,
        ] {
            let mut total = 0.0;
            let mut total_mid = 0.0;
            let seeds = [33u64, 34, 35, 36];
            for &seed in &seeds {
                let config = gest_core::GestConfig::builder(machine)
                    .measurement(measurement)
                    .population_size(30)
                    .individual_size(30)
                    .generations(30)
                    .crossover(crossover)
                    .seed(seed)
                    .build()?;
                let summary = gest_core::GestRun::builder()
                    .config(config)
                    .build()?
                    .run()?;
                total += summary.best.fitness;
                total_mid += summary
                    .history
                    .best_series()
                    .get(10)
                    .copied()
                    .unwrap_or(0.0);
            }
            let n = seeds.len() as f64;
            let _ = writeln!(
                out,
                "  {:<12} {:<10} best {:.4} {unit} (gen10 {:.4} {unit})",
                machine,
                format!("{crossover:?}"),
                scale * total / n,
                scale * total_mid / n,
            );
        }
    }

    // 2. Mutation-rate sweep around the 1-instruction rule of thumb.
    let _ = writeln!(
        out,
        "\n[2] mutation rate (loop length 30 => rule of thumb ~0.033):"
    );
    for rate in [0.0, 0.01, 0.033, 0.10, 0.30] {
        let config = gest_core::GestConfig::builder("cortex-a15")
            .measurement("power")
            .population_size(30)
            .individual_size(30)
            .mutation_rate(rate)
            .generations(30)
            .seed(33)
            .build()?;
        let summary = gest_core::GestRun::builder()
            .config(config)
            .build()?
            .run()?;
        let _ = writeln!(out, "  rate {rate:<5} best {:.4} W", summary.best.fitness);
    }

    // 3. Elitism on/off.
    let _ = writeln!(out, "\n[3] elitism:");
    for elitism in [true, false] {
        let config = gest_core::GestConfig::builder("cortex-a15")
            .measurement("power")
            .population_size(30)
            .individual_size(30)
            .elitism(elitism)
            .generations(30)
            .seed(33)
            .build()?;
        let summary = gest_core::GestRun::builder()
            .config(config)
            .build()?
            .run()?;
        let _ = writeln!(
            out,
            "  elitism={elitism:<5} best {:.4} W",
            summary.best.fitness
        );
    }

    // 4. Register initialization: checkerboard vs zero (paper §III.B.2:
    // values matter because of bit switching).
    let _ = writeln!(
        out,
        "\n[4] register/memory init (same A15 virus, measured):"
    );
    let summary = evolve(
        "cortex-a15",
        "power",
        "default",
        Budget {
            population: 30,
            individual: 30,
            generations: 30,
        },
        15,
    )?;
    let machine = MachineConfig::cortex_a15();
    let checkerboard = measure(&machine, &summary.best_program)?;
    let mut zero_program = summary.best_program.clone();
    zero_program.init.clear();
    zero_program.mem_init = gest_isa::MemInit::Zero;
    let zeroed = measure(&machine, &zero_program)?;
    let _ = writeln!(
        out,
        "  checkerboard init: {:.4} W",
        checkerboard.avg_power_w
    );
    let _ = writeln!(out, "  all-zero init:     {:.4} W", zeroed.avg_power_w);
    let _ = writeln!(
        out,
        "  switching-activity contribution: {:+.1}%",
        100.0 * (checkerboard.avg_power_w / zeroed.avg_power_w - 1.0)
    );

    // 5. dI/dt loop length vs the PDN-resonance rule of thumb.
    let machine = MachineConfig::athlon_x4();
    let pdn = machine.pdn.expect("athlon has a PDN");
    let rule = GaConfig::didt_loop_length(machine.clock_hz, pdn.resonance_hz(), machine.max_ipc());
    let _ = writeln!(
        out,
        "\n[5] dI/dt loop length (rule of thumb = {rule} for {:.0} MHz resonance):",
        pdn.resonance_hz() / 1e6
    );
    for length in [8usize, rule / 2, rule, rule * 2] {
        let summary = evolve(
            "athlon-x4",
            "voltage_noise",
            "default",
            Budget {
                population: 24,
                individual: length,
                generations: 24,
            },
            8,
        )?;
        let _ = writeln!(
            out,
            "  loop {length:>3}: best {:.2} mV peak-to-peak",
            summary.best.fitness * 1e3
        );
    }
    Ok(out)
}

/// Multi-core scaling (paper §IV discussion): L1-resident viruses scale
/// linearly across cores; shared-memory streaming workloads contend on
/// the L2/bus and add NoC power (the MAMPO effect the paper cites).
pub fn multicore() -> Result<String, GestError> {
    use gest_sim::{MemSharing, MultiCoreSimulator, UncoreConfig};
    let machine = MachineConfig::xgene2();
    let mut out = String::from("Multi-core scaling on the X-Gene2 model (8 cores)\n");

    // The evolved power virus (L1-resident, like the paper's viruses).
    let summary = evolve(
        "xgene2",
        "power",
        "default",
        Budget {
            population: 30,
            individual: 30,
            generations: 30,
        },
        2,
    )?;
    let virus = summary.best_program;
    let streaming = gest_workloads::streamcluster().program;

    let _ = writeln!(
        out,
        "{:<28} {:>6} {:>11} {:>12} {:>10} {:>9}",
        "workload", "cores", "efficiency", "chip (W)", "NoC+L2 (W)", "L2 acc"
    );
    for (label, program, buffer) in [
        ("GA power virus (private)", &virus, machine.mem_bytes),
        ("streamcluster (shared)", &streaming, 1usize << 20),
    ] {
        for cores in [1u8, 2, 4, 8] {
            let simulator = MultiCoreSimulator::new(machine.clone(), UncoreConfig::server())
                .with_buffer_bytes(buffer)
                .with_sharing(if buffer > machine.mem_bytes {
                    MemSharing::Shared
                } else {
                    MemSharing::Private
                });
            let result = simulator.run_replicated(program, cores, 200)?;
            let _ = writeln!(
                out,
                "{:<28} {:>6} {:>11.3} {:>12.2} {:>10.2} {:>9}",
                label,
                cores,
                result.scaling_efficiency,
                result.chip_power_w,
                result.uncore_traffic_w,
                result.l2.hits + result.l2.misses
            );
        }
    }
    let _ = writeln!(
        out,
        "\n(paper: 'the generated viruses scale well with multi-core execution because \
         running multiple virus instances is not causing performance interference')"
    );
    Ok(out)
}

/// LLC/DRAM stress search (paper §VII: "with GeST is possible to stress
/// LLC or DRAM by instructing the framework to optimize towards
/// cache-misses").
pub fn llc_stress() -> Result<String, GestError> {
    let mut machine = MachineConfig::xgene2();
    machine.mem_bytes = 1 << 20; // 1 MiB buffer: far larger than the 32 KiB L1
    let budget = Budget::paper();
    let config = gest_core::GestConfig::builder("xgene2")
        .machine_config(machine.clone())
        .measurement("cache_miss")
        .pool(gest_core::llc_pool())
        .population_size(budget.population)
        .individual_size(30)
        .generations(budget.generations.min(40))
        .seed(12)
        .build()?;
    let summary = gest_core::GestRun::builder()
        .config(config)
        .build()?
        .run()?;

    let mut out = String::from("LLC/DRAM stress search (cache-miss maximization)\n");
    let _ = writeln!(
        out,
        "evolved stressor: {:.1} L1 misses per kilo-instruction ({:.1}% miss rate)",
        summary.best.measurements[0],
        summary.best.measurements[1] * 100.0
    );
    let m = gest_core::CacheMissMeasurement::new(machine, compare_run_config());
    use gest_core::Measurement as _;
    let _ = writeln!(out, "\ncomparison (same 1 MiB buffer machine):");
    for workload in [gest_workloads::prime95(), gest_workloads::streamcluster()] {
        let values = m.measure(&workload.program)?;
        let _ = writeln!(
            out,
            "  {:<16} {:>8.1} misses/kinstr ({:>5.1}% miss rate)",
            workload.name,
            values[0],
            values[1] * 100.0
        );
    }
    let _ = writeln!(
        out,
        "  {:<16} {:>8.1} misses/kinstr ({:>5.1}% miss rate)",
        "GA LLC stressor",
        summary.best.measurements[0],
        summary.best.measurements[1] * 100.0
    );
    Ok(out)
}

/// Measurement-noise ablation (paper §IV: single-core optimization is
/// preferred because "less measurement variability ... helps the GA
/// optimization to converge faster").
pub fn noise() -> Result<String, GestError> {
    use gest_core::{GestConfig, NoisyMeasurement, Registry};
    let mut out = String::from("Measurement-noise ablation (cortex-a15 power search)\n");
    let registry = Registry::default();
    let clean_measure =
        registry.build_measurement("power", MachineConfig::cortex_a15(), compare_run_config())?;
    for sigma in [0.0, 0.02, 0.10] {
        // Same seeds; only the measurement noise differs. The run uses a
        // noisy instrument, but the resulting best individual is re-scored
        // with a clean instrument to reveal the true quality.
        let config = GestConfig::builder("cortex-a15")
            .measurement("power")
            .population_size(30)
            .individual_size(30)
            .generations(30)
            .seed(44)
            .build()?;
        let noisy = NoisyMeasurement::wrap(
            registry.build_measurement("power", MachineConfig::cortex_a15(), config.run_config)?,
            sigma,
            44,
        );
        let summary = run_with_measurement(config, std::sync::Arc::new(noisy))?;
        let true_power = clean_measure.measure(&summary.best_program)?[0];
        let _ = writeln!(
            out,
            "  sigma {:>4.0}%: apparent best {:.4} W, true best {:.4} W",
            sigma * 100.0,
            summary.best.fitness,
            true_power
        );
    }
    let _ = writeln!(
        out,
        "\n(noise inflates apparent fitness and degrades the true quality of the \
         selected individual — the paper's motivation for low-variability, \
         single-core measurement)"
    );
    Ok(out)
}

/// Adaptive-clocking mitigation study (paper intro, use-case (e): "testing
/// the efficacy of energy-efficiency techniques such as voltage-noise
/// mitigation mechanisms"). At a supply where transient droops violate
/// timing, the dI/dt virus fires the mechanism hardest — it is the right
/// workload for characterizing mitigation cost.
pub fn mitigation() -> Result<String, GestError> {
    use gest_sim::{simulate_adaptive_clock, AdaptiveClockConfig};
    let virus = didt_virus()?;
    let mut machine = MachineConfig::athlon_x4();
    let pdn = machine.pdn.as_mut().expect("athlon has a PDN");
    // Undervolted operating point: DC level safe, droops violate.
    pdn.vdd *= 0.87;
    let clock = AdaptiveClockConfig {
        threshold_v: 1.19,
        stretch: 4,
    };
    let run_config = compare_run_config();

    let mut out = String::from(
        "Adaptive-clocking mitigation efficacy at an undervolted operating point
",
    );
    let _ = writeln!(
        out,
        "(vdd {:.3} V, v_crit {:.2} V, stretch threshold {:.2} V, stretch 4x)
",
        machine.pdn.expect("athlon has a PDN").vdd,
        machine.pdn.expect("athlon has a PDN").v_crit,
        clock.threshold_v
    );
    let _ = writeln!(
        out,
        "{:<20} {:>12} {:>12} {:>10} {:>10}",
        "workload", "viol. (off)", "viol. (on)", "stretches", "slowdown"
    );
    let mut rows: Vec<(String, gest_isa::Program)> = vec![
        ("prime95".into(), gest_workloads::prime95().program),
        ("linpack".into(), gest_workloads::linpack().program),
        ("GA_dIdt_virus".into(), virus.best_program),
    ];
    for (label, program) in rows.drain(..) {
        let result = simulate_adaptive_clock(&machine, &program, &run_config, &clock)?;
        let _ = writeln!(
            out,
            "{:<20} {:>12} {:>12} {:>10} {:>10.3}",
            label,
            result.violations_unmitigated,
            result.violations_mitigated,
            result.stretched_cycles,
            result.slowdown
        );
    }
    let _ = writeln!(
        out,
        "\n(the dI/dt virus exposes the mechanism's worst-case cost; steady power workloads barely trigger it)"
    );
    Ok(out)
}

/// Runs a search with an explicit measurement instance (used by the noise
/// ablation).
fn run_with_measurement(
    config: gest_core::GestConfig,
    measurement: std::sync::Arc<dyn gest_core::Measurement>,
) -> Result<gest_core::RunSummary, GestError> {
    gest_core::GestRun::builder()
        .config(config)
        .measurement(measurement)
        .build()?
        .run()
}

/// Uniform `Result`-returning wrappers so every experiment binary has the
/// same shape (and `all_experiments` can iterate them).
macro_rules! wrap {
    ($(($runner:ident, $inner:ident, $fallible:tt)),+ $(,)?) => {
        $(wrap!(@one $runner, $inner, $fallible);)+

        /// Every experiment as `(id, runner)` pairs, in paper order.
        pub fn all() -> Vec<(&'static str, fn() -> Result<String, GestError>)> {
            vec![$((stringify!($inner), $runner as fn() -> Result<String, GestError>)),+]
        }
    };
    (@one $runner:ident, $inner:ident, true) => {
        #[doc = concat!("Runs the `", stringify!($inner), "` experiment.")]
        ///
        /// # Errors
        ///
        /// Propagates framework/simulator errors.
        pub fn $runner() -> Result<String, GestError> {
            $inner()
        }
    };
    (@one $runner:ident, $inner:ident, false) => {
        #[doc = concat!("Runs the `", stringify!($inner), "` experiment.")]
        ///
        /// # Errors
        ///
        /// Infallible; `Result` for uniformity.
        pub fn $runner() -> Result<String, GestError> {
            Ok($inner())
        }
    };
}

wrap!(
    (run_table1, table1, false),
    (run_fig5, fig5, true),
    (run_fig6, fig6, true),
    (run_table3, table3, true),
    (run_fig7, fig7, true),
    (run_table4, table4, true),
    (run_fig8, fig8, true),
    (run_fig9, fig9, true),
    (run_table5, table5, false),
    (run_convergence, convergence, true),
    (run_ablations, ablations, true),
    (run_multicore, multicore, true),
    (run_llc_stress, llc_stress, true),
    (run_noise, noise, true),
    (run_mitigation, mitigation, true),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render() {
        let t1 = table1();
        assert!(t1.contains("population_size"));
        assert!(t1.contains("50"));
        let t5 = table5();
        assert!(t5.contains("GeST"));
        assert!(t5.contains("MAMPO"));
    }
}
