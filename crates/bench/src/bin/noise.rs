//! Regenerates the noise extension experiment (see DESIGN.md).
fn main() {
    match gest_bench::experiments::run_noise() {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
