//! Regenerates the paper's fig7 (see DESIGN.md experiment index).
fn main() {
    match gest_bench::experiments::run_fig7() {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
