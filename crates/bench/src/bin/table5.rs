//! Regenerates the paper's table5 (see DESIGN.md experiment index).
fn main() {
    match gest_bench::experiments::run_table5() {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
