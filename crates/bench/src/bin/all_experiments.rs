//! Runs every paper experiment in sequence and prints the combined report.
//!
//! ```text
//! cargo run --release -p gest-bench --bin all_experiments [output.md]
//! ```
//!
//! Set `GEST_FAST=1` for a quick smoke run with reduced GA budgets.

use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let out_path = std::env::args().nth(1);
    let mut document = String::new();
    for (name, runner) in gest_bench::experiments::all() {
        eprintln!("running {name}...");
        let started = Instant::now();
        match runner() {
            Ok(report) => {
                let _ = writeln!(
                    document,
                    "## {name} ({:.1} s)\n\n```\n{report}```\n",
                    started.elapsed().as_secs_f64()
                );
            }
            Err(e) => {
                eprintln!("{name} failed: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("{document}");
    if let Some(path) = out_path {
        std::fs::write(&path, &document).expect("write report file");
        eprintln!("report written to {path}");
    }
}
