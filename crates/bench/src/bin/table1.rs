//! Regenerates the paper's table1 (see DESIGN.md experiment index).
fn main() {
    match gest_bench::experiments::run_table1() {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
