//! Regenerates the paper's fig6 (see DESIGN.md experiment index).
fn main() {
    match gest_bench::experiments::run_fig6() {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
