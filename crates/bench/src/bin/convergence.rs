//! Regenerates the paper's convergence (see DESIGN.md experiment index).
fn main() {
    match gest_bench::experiments::run_convergence() {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
