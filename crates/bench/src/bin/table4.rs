//! Regenerates the paper's table4 (see DESIGN.md experiment index).
fn main() {
    match gest_bench::experiments::run_table4() {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
