//! Criterion bench: telemetry overhead on the GA search loop.
//!
//! The contract is that a disabled [`Telemetry`] handle costs close to
//! nothing (the hot path is one `Option` check), so instrumenting the
//! runner must not slow uninstrumented searches. Compare:
//!
//! * `search_telemetry_disabled` — the default `Telemetry::disabled()`;
//! * `search_telemetry_noop_sink` — fully enabled pipeline draining into
//!   a [`NoopSink`], the upper bound for enabled-but-unobserved cost;
//! * hot-path microbenches for the disabled span/counter calls.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gest_core::{GestConfig, GestRun};
use gest_telemetry::{NoopSink, Telemetry};
use std::sync::Arc;

fn search_config(telemetry: Telemetry) -> GestConfig {
    let mut config = GestConfig::builder("cortex-a7")
        .measurement("ipc")
        .population_size(8)
        .individual_size(10)
        .generations(2)
        .seed(17)
        .build()
        .expect("builder config is valid");
    config.threads = 1;
    config.telemetry = telemetry;
    config
}

fn bench_search_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry");

    group.bench_function("search_telemetry_disabled", |b| {
        b.iter(|| {
            let run = GestRun::builder()
                .config(search_config(Telemetry::disabled()))
                .build()
                .unwrap();
            black_box(run.run().unwrap().best.fitness)
        });
    });

    group.bench_function("search_telemetry_noop_sink", |b| {
        b.iter(|| {
            let telemetry = Telemetry::new(Arc::new(NoopSink));
            let run = GestRun::builder()
                .config(search_config(telemetry))
                .build()
                .unwrap();
            black_box(run.run().unwrap().best.fitness)
        });
    });

    group.finish();
}

fn bench_hot_path(c: &mut Criterion) {
    let disabled = Telemetry::disabled();
    c.bench_function("disabled_span_open_close", |b| {
        b.iter(|| {
            let guard = disabled.span(black_box("eval.candidate"));
            black_box(guard.id())
        });
    });
    c.bench_function("disabled_counter_add", |b| {
        b.iter(|| disabled.add_counter(black_box("eval.failures"), black_box(1)));
    });
}

criterion_group!(benches, bench_search_overhead, bench_hot_path);
criterion_main!(benches);
