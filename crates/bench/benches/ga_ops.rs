//! Criterion bench: the genetic-operator costs (selection, crossover,
//! mutation) and a whole evaluated generation.

use criterion::{criterion_group, criterion_main, Criterion};
use gest_core::{GestConfig, GestRun};
use gest_ga::{crossover_one_point, crossover_uniform, mutate, tournament_select, Evaluated};
use gest_isa::Gene;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn population(pool: &gest_isa::InstructionPool, n: usize, genes: usize) -> Vec<Evaluated<Gene>> {
    let mut rng = StdRng::seed_from_u64(3);
    (0..n)
        .map(|i| Evaluated {
            id: i as u64,
            parents: (None, None),
            genes: (0..genes).map(|_| pool.random_gene(&mut rng)).collect(),
            fitness: i as f64,
            measurements: vec![],
        })
        .collect()
}

fn bench_operators(c: &mut Criterion) {
    let pool = gest_core::full_pool();
    let individuals = population(&pool, 50, 50);

    c.bench_function("tournament_select_size5", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| tournament_select(&individuals, 5, &mut rng));
    });

    c.bench_function("crossover_one_point_len50", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| crossover_one_point(&individuals[0].genes, &individuals[1].genes, &mut rng));
    });

    c.bench_function("crossover_uniform_len50", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| crossover_uniform(&individuals[0].genes, &individuals[1].genes, &mut rng));
    });

    c.bench_function("mutate_rate2pct_len50", |b| {
        let mut rng = StdRng::seed_from_u64(8);
        let mut genes = individuals[0].genes.clone();
        b.iter(|| {
            mutate(&mut genes, 0.02, &mut rng, |gene, rng| {
                pool.mutate_operand(gene, rng)
            })
        });
    });

    c.bench_function("random_gene", |b| {
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| pool.random_gene(&mut rng));
    });
}

fn bench_generation(c: &mut Criterion) {
    c.bench_function("full_generation_pop16", |b| {
        b.iter(|| {
            let config = GestConfig::builder("cortex-a7")
                .measurement("power")
                .population_size(16)
                .individual_size(20)
                .generations(1)
                .seed(11)
                .build()
                .expect("static config");
            GestRun::builder()
                .config(config)
                .build()
                .expect("static config")
                .run()
                .expect("run succeeds")
        });
    });
}

criterion_group!(benches, bench_operators, bench_generation);
criterion_main!(benches);
