//! Criterion bench: simulator throughput per machine model.
//!
//! The per-individual measurement dominates GA runtime (paper §IV: "5
//! seconds per measurement ... approximately 7 hours"); this bench tracks
//! how fast the substrate measures one individual.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gest_isa::Template;
use gest_sim::{MachineConfig, RunConfig, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_machines(c: &mut Criterion) {
    let pool = gest_core::full_pool();
    let mut rng = StdRng::seed_from_u64(1);
    let genes: Vec<_> = (0..50).map(|_| pool.random_gene(&mut rng)).collect();
    let program =
        Template::default_stress().materialize("bench", gest_isa::InstructionPool::flatten(&genes));
    let run_config = RunConfig::quick();

    let mut group = c.benchmark_group("simulator_measure_individual");
    for machine in MachineConfig::all_presets() {
        let simulator = Simulator::new(machine.clone());
        let instructions = simulator
            .run(&program, &run_config)
            .expect("bench program runs")
            .instructions;
        group.throughput(Throughput::Elements(instructions));
        group.bench_with_input(
            BenchmarkId::from_parameter(&machine.name),
            &simulator,
            |b, s| {
                b.iter(|| s.run(&program, &run_config).expect("bench program runs"));
            },
        );
    }
    group.finish();
}

fn bench_vmin_sweep(c: &mut Criterion) {
    let machine = MachineConfig::athlon_x4();
    let program = Template::default_stress().materialize(
        "vmin",
        gest_isa::asm::parse_block("VFMLA v8, v0, v1\nSDIV x1, x1, x2\nLDR x11, [x10, #0]")
            .expect("static block"),
    );
    c.bench_function("vmin_characterization", |b| {
        b.iter(|| {
            gest_sim::characterize_vmin(
                &machine,
                &program,
                &RunConfig::quick(),
                &gest_sim::VminConfig::default(),
            )
            .expect("sweep runs")
        });
    });
}

criterion_group!(benches, bench_machines, bench_vmin_sweep);
criterion_main!(benches);
