//! Criterion bench: configuration parsing and assembler round-trips.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gest_isa::{asm, Template};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CONFIG_XML: &str = r#"<gest>
  <target machine="cortex-a15" measurement="power" fitness="default"/>
  <ga population_size="50" individual_size="50" generations="100" seed="1"/>
  <instructions>
    <operand id="r" values="x0 x1 x2 x3 x4 x5 x6 x7" type="register"/>
    <operand id="v" values="v0 v1 v2 v3" type="register"/>
    <operand id="imm" min="0" max="256" stride="8" type="immediate"/>
    <instruction name="ADD" num_of_operands="3" operand1="r" operand2="r" operand3="r" type="shortint"/>
    <instruction name="VFMLA" num_of_operands="3" operand1="v" operand2="v" operand3="v" type="float"/>
    <instruction name="LDR" num_of_operands="3" operand1="r" operand2="r" operand3="imm" type="mem"/>
  </instructions>
</gest>"#;

fn bench_parsing(c: &mut Criterion) {
    c.bench_function("xml_document_parse", |b| {
        b.iter(|| gest_xml::Document::parse(CONFIG_XML).expect("static xml"));
    });

    c.bench_function("gest_config_from_xml", |b| {
        b.iter(|| gest_core::GestConfig::from_xml_str(CONFIG_XML).expect("static xml"));
    });

    // Assembler round-trip over a realistic 50-instruction virus body.
    let pool = gest_core::full_pool();
    let mut rng = StdRng::seed_from_u64(2);
    let genes: Vec<_> = (0..50).map(|_| pool.random_gene(&mut rng)).collect();
    let body = gest_isa::InstructionPool::flatten(&genes);
    let text = asm::format_block(&body);
    let mut group = c.benchmark_group("assembler");
    group.throughput(Throughput::Elements(body.len() as u64));
    group.bench_function("format_block_50", |b| {
        b.iter(|| asm::format_block(&body));
    });
    group.bench_function("parse_block_50", |b| {
        b.iter(|| asm::parse_block(&text).expect("static block"));
    });
    group.finish();

    let template_text = ".mem checkerboard\n.init\nMOVI x10, #0\n.loop\nNOP\n#loop_code\nNOP\n";
    c.bench_function("template_parse_and_materialize", |b| {
        b.iter(|| {
            let template = Template::parse(template_text).expect("static template");
            template.materialize("bench", body.clone())
        });
    });
}

criterion_group!(benches, bench_parsing);
criterion_main!(benches);
