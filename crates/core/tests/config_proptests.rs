//! Property tests over the framework configuration layer: XML round-trips
//! for arbitrary GA settings and robustness against mangled input.

use gest_core::GestConfig;
use proptest::prelude::*;

fn machine_strategy() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec!["cortex-a15", "cortex-a7", "xgene2", "athlon-x4"])
}

proptest! {
    #[test]
    fn builder_to_xml_round_trips(
        machine in machine_strategy(),
        population in 2usize..100,
        individual in 1usize..80,
        generations in 1u32..200,
        seed in any::<u64>(),
        elitism in any::<bool>(),
    ) {
        let config = GestConfig::builder(machine)
            .population_size(population)
            .individual_size(individual)
            .generations(generations)
            .seed(seed)
            .elitism(elitism)
            .build()
            .unwrap();
        let xml = config.to_xml().to_string();
        let reparsed = GestConfig::from_xml_str(&xml).unwrap();
        prop_assert_eq!(reparsed.machine.name, config.machine.name);
        prop_assert_eq!(reparsed.ga.population_size, population);
        prop_assert_eq!(reparsed.ga.individual_size, individual);
        prop_assert_eq!(reparsed.generations, generations);
        prop_assert_eq!(reparsed.seed, seed);
        prop_assert_eq!(reparsed.ga.elitism, elitism);
        prop_assert_eq!(reparsed.pool.defs().len(), config.pool.defs().len());
        prop_assert_eq!(
            reparsed.pool.total_variations(),
            config.pool.total_variations()
        );
    }

    #[test]
    fn from_xml_never_panics_on_mangled_config(
        mutation_index in 0usize..512,
        replacement in "[ -~]{0,8}",
    ) {
        // Start from a valid config and splice arbitrary ASCII into it.
        let base = GestConfig::builder("cortex-a15").build().unwrap().to_xml().to_string();
        let index = mutation_index.min(base.len());
        let mut mangled = String::with_capacity(base.len() + replacement.len());
        mangled.push_str(&base[..index]);
        mangled.push_str(&replacement);
        // Keep UTF-8 boundaries safe: base is ASCII (to_xml emits ASCII for
        // the default pool).
        mangled.push_str(&base[index..]);
        let _ = GestConfig::from_xml_str(&mangled); // must not panic
    }

    #[test]
    fn invalid_ga_numbers_are_config_errors(population in 0usize..2) {
        let xml = format!(
            r#"<gest><target machine="xgene2"/><ga population_size="{population}"/></gest>"#
        );
        prop_assert!(GestConfig::from_xml_str(&xml).is_err());
    }
}
