//! Property tests for the evaluation cache: a search with the cache
//! enabled must be observationally identical — fitness and measurement
//! bits included — to the same search evaluated fresh, on every machine
//! model, for arbitrary seeds.

use gest_core::{GestConfig, GestRun};
use proptest::prelude::*;

/// Runs a small search and flattens every individual of every generation
/// into comparable bits: (generation, id, fitness bits, measurement bits).
fn evaluate(machine: &str, seed: u64, cache: bool) -> Vec<(u32, u64, u64, Vec<u64>)> {
    let mut config = GestConfig::builder(machine)
        .measurement("power")
        .population_size(6)
        .individual_size(8)
        .generations(3)
        .seed(seed)
        .build()
        .unwrap();
    // Short cycle budgets keep debug-mode property runs quick.
    config.run_config.max_iterations = 40;
    config.run_config.max_cycles = 3000;
    let mut run = GestRun::builder()
        .config(config)
        .eval_cache(cache)
        .build()
        .unwrap();
    let mut rows = Vec::new();
    while !run.is_complete() {
        run.step().unwrap();
        let population = run.population().unwrap();
        for individual in &population.individuals {
            rows.push((
                population.generation,
                individual.id,
                individual.fitness.to_bits(),
                individual
                    .measurements
                    .iter()
                    .map(|m| m.to_bits())
                    .collect(),
            ));
        }
    }
    if cache {
        let stats = run.eval_cache_stats().expect("power is content-pure");
        assert_eq!(
            stats.hits + stats.misses,
            rows.len() as u64,
            "every evaluation consults the cache"
        );
    }
    run.finish();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn cached_and_fresh_evaluation_are_bit_identical(seed in 0u64..1_000_000) {
        for machine in ["cortex-a15", "cortex-a7", "xgene2", "athlon-x4"] {
            let cached = evaluate(machine, seed, true);
            let fresh = evaluate(machine, seed, false);
            prop_assert_eq!(&cached, &fresh, "machine {}", machine);
        }
    }
}
