//! Post-processing of saved populations.
//!
//! Reproduces the paper's release script that "reads the populations in
//! binary format and extracts statistics such as the fitness value of the
//! fittest individual per generation and instruction mix breakdown of
//! fittest individual per generation" (§III.D).

use crate::error::GestError;
use crate::output::{OutputWriter, SavedPopulation};
use gest_isa::{InstrClass, InstructionPool};
use std::fmt::Write as _;
use std::path::Path;

/// Statistics of one generation.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationStats {
    /// Generation number.
    pub generation: u32,
    /// Best fitness in the generation.
    pub best_fitness: f64,
    /// Mean fitness across the generation.
    pub mean_fitness: f64,
    /// Measurement values of the fittest individual.
    pub best_measurements: Vec<f64>,
    /// Instruction-class breakdown of the fittest individual, in
    /// [`InstrClass::ALL`] order.
    pub best_breakdown: [usize; 6],
    /// Unique instruction definitions used by the fittest individual.
    pub best_unique_defs: usize,
}

/// Computes per-generation statistics from loaded populations.
pub fn analyze_populations(populations: &[SavedPopulation]) -> Vec<GenerationStats> {
    populations
        .iter()
        .filter_map(|population| {
            let best = population.best()?;
            let mean = population
                .individuals
                .iter()
                .map(|i| i.fitness)
                .sum::<f64>()
                / population.individuals.len() as f64;
            Some(GenerationStats {
                generation: population.generation,
                best_fitness: best.fitness,
                mean_fitness: mean,
                best_measurements: best.measurements.clone(),
                best_breakdown: InstructionPool::class_breakdown(&best.genes),
                best_unique_defs: InstructionPool::unique_defs(&best.genes),
            })
        })
        .collect()
}

/// Loads every population file in a run's output directory and analyzes
/// it.
///
/// # Errors
///
/// I/O and codec errors reading the population files.
pub fn analyze_dir(dir: &Path) -> Result<Vec<GenerationStats>, GestError> {
    let files = OutputWriter::population_files(dir)?;
    let mut populations = Vec::with_capacity(files.len());
    for file in files {
        populations.push(SavedPopulation::load(&file)?);
    }
    Ok(analyze_populations(&populations))
}

/// Renders the statistics as an aligned text table.
///
/// # Examples
///
/// ```
/// let report = gest_core::stats::render_report(&[]);
/// assert!(report.contains("generation"));
/// ```
pub fn render_report(stats: &[GenerationStats]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>12} {:>7} | {}",
        "generation",
        "best",
        "mean",
        "unique",
        InstrClass::ALL
            .map(|c| format!("{:>10}", c.label()))
            .join(" ")
    );
    for s in stats {
        let _ = write!(
            out,
            "{:>10} {:>12.4} {:>12.4} {:>7} |",
            s.generation, s.best_fitness, s.mean_fitness, s.best_unique_defs
        );
        for count in s.best_breakdown {
            let _ = write!(out, " {count:>10}");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::SavedIndividual;
    use crate::pools::full_pool;
    use gest_isa::Gene;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn saved(generation: u32, fitnesses: &[f64]) -> SavedPopulation {
        let pool = full_pool();
        let mut rng = StdRng::seed_from_u64(generation as u64);
        SavedPopulation {
            generation,
            individuals: fitnesses
                .iter()
                .enumerate()
                .map(|(i, &fitness)| SavedIndividual {
                    id: i as u64,
                    parents: (None, None),
                    fitness,
                    measurements: vec![fitness, 1.0],
                    genes: (0..6)
                        .map(|_| pool.random_gene(&mut rng))
                        .collect::<Vec<Gene>>(),
                })
                .collect(),
        }
    }

    #[test]
    fn analyze_extracts_best_and_mean() {
        let stats = analyze_populations(&[saved(0, &[1.0, 3.0]), saved(1, &[2.0, 4.0])]);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].best_fitness, 3.0);
        assert_eq!(stats[0].mean_fitness, 2.0);
        assert_eq!(stats[1].generation, 1);
        assert_eq!(stats[1].best_breakdown.iter().sum::<usize>(), 6);
        assert!(stats[1].best_unique_defs >= 1);
    }

    #[test]
    fn empty_populations_are_skipped() {
        let empty = SavedPopulation {
            generation: 5,
            individuals: vec![],
        };
        assert!(analyze_populations(&[empty]).is_empty());
    }

    #[test]
    fn report_contains_rows_and_headers() {
        let stats = analyze_populations(&[saved(0, &[1.0]), saved(1, &[2.0])]);
        let report = render_report(&stats);
        assert!(report.contains("generation"));
        assert!(report.contains("Float/SIMD"));
        assert_eq!(report.lines().count(), 3, "header + 2 rows");
    }

    #[test]
    fn analyze_dir_round_trip() {
        let dir = std::env::temp_dir().join(format!("gest_stats_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for generation in 0..3u32 {
            let population = saved(generation, &[generation as f64, generation as f64 + 0.5]);
            std::fs::write(
                dir.join(format!("population_{generation:04}.bin")),
                population.encode(),
            )
            .unwrap();
        }
        let stats = analyze_dir(&dir).unwrap();
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[2].best_fitness, 2.5);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
