//! The framework's unified error type.

use gest_ga::GaConfigError;
use gest_isa::{CodecError, IsaError};
use gest_sim::SimError;
use gest_xml::XmlError;
use std::error::Error;
use std::fmt;

/// Any error the GeST framework can produce.
#[derive(Debug)]
pub enum GestError {
    /// Configuration problems (unknown machine/measurement/fitness names,
    /// missing XML elements…).
    Config(String),
    /// ISA-level errors (pool validation, assembler, template).
    Isa(IsaError),
    /// XML parse errors.
    Xml(XmlError),
    /// GA configuration validation errors.
    Ga(GaConfigError),
    /// Simulator errors during measurement.
    Sim(SimError),
    /// Population (de)serialization errors.
    Codec(CodecError),
    /// Filesystem errors while writing run outputs.
    Io(std::io::Error),
    /// An evaluation backend is unusable as a whole — e.g. a distributed
    /// coordinator was given an empty worker list, or every worker is
    /// down and no local fallback is configured. Distinct from
    /// [`GestError::Measurement`], which concerns a single candidate.
    Backend(String),
    /// An evaluation worker failed abnormally (e.g. a custom measurement
    /// panicked) while measuring a candidate.
    Measurement {
        /// Id of the candidate being evaluated when the worker died.
        candidate: u64,
        /// The panic payload or failure description.
        message: String,
    },
}

impl GestError {
    /// Whether the error is plausibly transient — an I/O, backend, or
    /// measurement fault that a retry from the last checkpoint could
    /// clear (a full disk drained, a fleet that came back, a flaky
    /// measurement) — as opposed to a configuration or logic fault that
    /// would fail identically on every attempt.
    ///
    /// This is the classification the serve scheduler's restart policy
    /// uses: transient step failures consume the run's bounded restart
    /// budget; permanent ones fail the run immediately.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            GestError::Io(_) | GestError::Backend(_) | GestError::Measurement { .. }
        )
    }
}

impl fmt::Display for GestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GestError::Config(msg) => write!(f, "configuration error: {msg}"),
            GestError::Isa(e) => write!(f, "isa error: {e}"),
            GestError::Xml(e) => write!(f, "xml error: {e}"),
            GestError::Ga(e) => write!(f, "ga configuration error: {e}"),
            GestError::Sim(e) => write!(f, "simulation error: {e}"),
            GestError::Codec(e) => write!(f, "population codec error: {e}"),
            GestError::Io(e) => write!(f, "io error: {e}"),
            GestError::Backend(msg) => write!(f, "evaluation backend error: {msg}"),
            GestError::Measurement { candidate, message } => {
                write!(f, "measurement of candidate {candidate} failed: {message}")
            }
        }
    }
}

impl Error for GestError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GestError::Config(_) | GestError::Backend(_) | GestError::Measurement { .. } => None,
            GestError::Isa(e) => Some(e),
            GestError::Xml(e) => Some(e),
            GestError::Ga(e) => Some(e),
            GestError::Sim(e) => Some(e),
            GestError::Codec(e) => Some(e),
            GestError::Io(e) => Some(e),
        }
    }
}

impl From<IsaError> for GestError {
    fn from(e: IsaError) -> Self {
        GestError::Isa(e)
    }
}

impl From<XmlError> for GestError {
    fn from(e: XmlError) -> Self {
        GestError::Xml(e)
    }
}

impl From<GaConfigError> for GestError {
    fn from(e: GaConfigError) -> Self {
        GestError::Ga(e)
    }
}

impl From<SimError> for GestError {
    fn from(e: SimError) -> Self {
        GestError::Sim(e)
    }
}

impl From<CodecError> for GestError {
    fn from(e: CodecError) -> Self {
        GestError::Codec(e)
    }
}

impl From<std::io::Error> for GestError {
    fn from(e: std::io::Error) -> Self {
        GestError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let err: GestError = IsaError::UnknownMnemonic("FOO".into()).into();
        assert!(err.source().is_some());
        assert!(err.to_string().contains("FOO"));

        let err: GestError = SimError::EmptyProgram.into();
        assert!(err.to_string().contains("empty"));

        let err = GestError::Config("bad".into());
        assert!(err.source().is_none());
    }

    #[test]
    fn transient_faults_are_io_backend_and_measurement() {
        assert!(GestError::Io(std::io::Error::other("enospc")).is_transient());
        assert!(GestError::Backend("fleet down".into()).is_transient());
        assert!(GestError::Measurement {
            candidate: 7,
            message: "worker died".into()
        }
        .is_transient());

        assert!(!GestError::Config("bad machine".into()).is_transient());
        assert!(!GestError::from(IsaError::UnknownMnemonic("FOO".into())).is_transient());
        assert!(!GestError::from(SimError::EmptyProgram).is_transient());
    }
}
