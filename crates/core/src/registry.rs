//! Typed plug-in registry — the replacement for the stringly
//! `measurement_by_name` / `fitness_by_name` dispatch.
//!
//! The paper loads measurement and fitness classes dynamically by name
//! from the configuration file. This module keeps the by-name indirection
//! (configuration files still say `measurement="power"`) but makes the
//! name → constructor mapping a first-class, extensible value instead of
//! a hard-coded `match`: callers register their own plug-ins next to the
//! shipped ones and hand the registry to [`crate::GestRun::builder`].
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), gest_core::GestError> {
//! use gest_core::{PowerMeasurement, Registry};
//! use gest_sim::{MachineConfig, RunConfig};
//! use std::sync::Arc;
//!
//! // Shipped names resolve out of the box…
//! let registry = Registry::default();
//! let power = registry.build_measurement(
//!     "power",
//!     MachineConfig::cortex_a15(),
//!     RunConfig::quick(),
//! )?;
//! assert_eq!(power.name(), "power");
//!
//! // …and custom plug-ins register under any name.
//! let registry = Registry::default().measurement("lab_probe", |machine, run| {
//!     Ok(Arc::new(PowerMeasurement::new(machine, run)))
//! });
//! assert!(registry.has_measurement("lab_probe"));
//! # Ok(())
//! # }
//! ```

use crate::error::GestError;
use crate::fitness::{DefaultFitness, Fitness, IpcPowerFitness, TempSimplicityFitness};
use crate::measurement::{
    CacheMissMeasurement, IpcMeasurement, Measurement, PowerMeasurement, TemperatureMeasurement,
    VoltageNoiseMeasurement,
};
use gest_sim::{MachineConfig, RunConfig};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Thermal parameters a fitness constructor may need (the paper's
/// Equation 1 uses the machine's idle and maximum temperatures).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitnessParams {
    /// Idle temperature `I_T` (°C).
    pub idle_c: f64,
    /// Maximum temperature `MAX_T` (°C).
    pub max_c: f64,
}

type MeasurementCtor =
    Arc<dyn Fn(MachineConfig, RunConfig) -> Result<Arc<dyn Measurement>, GestError> + Send + Sync>;
type FitnessCtor = Arc<dyn Fn(FitnessParams) -> Result<Arc<dyn Fitness>, GestError> + Send + Sync>;

/// Maps configuration names to measurement and fitness constructors.
///
/// [`Registry::default`] ships the paper's plug-ins; [`Registry::empty`]
/// starts blank (e.g. to forbid everything but an approved set).
/// Registration methods consume and return `self`, so registries are
/// built as chains.
#[derive(Clone)]
pub struct Registry {
    measurements: BTreeMap<String, MeasurementCtor>,
    fitnesses: BTreeMap<String, FitnessCtor>,
}

impl Default for Registry {
    /// The shipped plug-ins: measurements `power`, `temperature`, `ipc`,
    /// `voltage_noise`, `cache_miss`; fitnesses `default`,
    /// `temp_simplicity`, `primary_minus_secondary`.
    fn default() -> Registry {
        Registry::empty()
            .measurement("power", |machine, run| {
                Ok(Arc::new(PowerMeasurement::new(machine, run)))
            })
            .measurement("temperature", |machine, run| {
                Ok(Arc::new(TemperatureMeasurement::new(machine, run)))
            })
            .measurement("ipc", |machine, run| {
                Ok(Arc::new(IpcMeasurement::new(machine, run)))
            })
            .measurement("voltage_noise", |machine, run| {
                Ok(Arc::new(VoltageNoiseMeasurement::new(machine, run)?))
            })
            .measurement("cache_miss", |machine, run| {
                Ok(Arc::new(CacheMissMeasurement::new(machine, run)))
            })
            .fitness("default", |_| Ok(Arc::new(DefaultFitness)))
            .fitness("temp_simplicity", |params| {
                Ok(Arc::new(TempSimplicityFitness::new(
                    params.idle_c,
                    params.max_c,
                )))
            })
            .fitness("primary_minus_secondary", |_| {
                Ok(Arc::new(IpcPowerFitness::default()))
            })
    }
}

impl Registry {
    /// A registry with nothing registered.
    pub fn empty() -> Registry {
        Registry {
            measurements: BTreeMap::new(),
            fitnesses: BTreeMap::new(),
        }
    }

    /// Registers (or overrides) a measurement constructor under `name`.
    pub fn measurement(
        mut self,
        name: &str,
        ctor: impl Fn(MachineConfig, RunConfig) -> Result<Arc<dyn Measurement>, GestError>
            + Send
            + Sync
            + 'static,
    ) -> Registry {
        self.measurements.insert(name.to_owned(), Arc::new(ctor));
        self
    }

    /// Registers (or overrides) a fitness constructor under `name`.
    pub fn fitness(
        mut self,
        name: &str,
        ctor: impl Fn(FitnessParams) -> Result<Arc<dyn Fitness>, GestError> + Send + Sync + 'static,
    ) -> Registry {
        self.fitnesses.insert(name.to_owned(), Arc::new(ctor));
        self
    }

    /// Whether a measurement is registered under `name`.
    pub fn has_measurement(&self, name: &str) -> bool {
        self.measurements.contains_key(name)
    }

    /// Whether a fitness is registered under `name`.
    pub fn has_fitness(&self, name: &str) -> bool {
        self.fitnesses.contains_key(name)
    }

    /// Registered measurement names, sorted.
    pub fn measurement_names(&self) -> Vec<&str> {
        self.measurements.keys().map(String::as_str).collect()
    }

    /// Registered fitness names, sorted.
    pub fn fitness_names(&self) -> Vec<&str> {
        self.fitnesses.keys().map(String::as_str).collect()
    }

    /// Instantiates the measurement registered under `name`.
    ///
    /// # Errors
    ///
    /// [`GestError::Config`] for unknown names (the message lists what is
    /// registered); whatever the constructor returns for invalid
    /// machine/measurement combinations.
    pub fn build_measurement(
        &self,
        name: &str,
        machine: MachineConfig,
        run_config: RunConfig,
    ) -> Result<Arc<dyn Measurement>, GestError> {
        let ctor = self.measurements.get(name).ok_or_else(|| {
            GestError::Config(format!(
                "unknown measurement {name:?} (registered: {})",
                self.measurement_names().join(", ")
            ))
        })?;
        ctor(machine, run_config)
    }

    /// Instantiates the fitness registered under `name`.
    ///
    /// # Errors
    ///
    /// [`GestError::Config`] for unknown names; whatever the constructor
    /// returns.
    pub fn build_fitness(
        &self,
        name: &str,
        params: FitnessParams,
    ) -> Result<Arc<dyn Fitness>, GestError> {
        let ctor = self.fitnesses.get(name).ok_or_else(|| {
            GestError::Config(format!(
                "unknown fitness {name:?} (registered: {})",
                self.fitness_names().join(", ")
            ))
        })?;
        ctor(params)
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("measurements", &self.measurement_names())
            .field("fitnesses", &self.fitness_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_registry_resolves_shipped_names() {
        let registry = Registry::default();
        for name in ["power", "temperature", "ipc", "cache_miss"] {
            let m = registry
                .build_measurement(name, MachineConfig::xgene2(), RunConfig::quick())
                .unwrap();
            assert_eq!(m.name(), name);
        }
        let noise = registry
            .build_measurement(
                "voltage_noise",
                MachineConfig::athlon_x4(),
                RunConfig::quick(),
            )
            .unwrap();
        assert_eq!(noise.name(), "voltage_noise");
        let params = FitnessParams {
            idle_c: 30.0,
            max_c: 105.0,
        };
        for name in ["default", "temp_simplicity", "primary_minus_secondary"] {
            registry.build_fitness(name, params).unwrap();
        }
    }

    #[test]
    fn unknown_names_list_registered_options() {
        let registry = Registry::default();
        let err = registry
            .build_measurement(
                "oscilloscope",
                MachineConfig::athlon_x4(),
                RunConfig::quick(),
            )
            .unwrap_err();
        assert!(err.to_string().contains("voltage_noise"), "{err}");
        let err = registry
            .build_fitness(
                "nope",
                FitnessParams {
                    idle_c: 0.0,
                    max_c: 1.0,
                },
            )
            .unwrap_err();
        assert!(err.to_string().contains("temp_simplicity"), "{err}");
    }

    #[test]
    fn custom_registrations_extend_and_override() {
        let registry = Registry::default()
            .measurement("probe", |machine, run| {
                Ok(Arc::new(PowerMeasurement::new(machine, run)))
            })
            // Overriding a shipped name wins.
            .measurement("ipc", |machine, run| {
                Ok(Arc::new(PowerMeasurement::new(machine, run)))
            });
        assert!(registry.has_measurement("probe"));
        let overridden = registry
            .build_measurement("ipc", MachineConfig::cortex_a7(), RunConfig::quick())
            .unwrap();
        assert_eq!(overridden.name(), "power", "override replaced the ctor");
        assert!(Registry::empty().measurement_names().is_empty());
        let debug = format!("{registry:?}");
        assert!(debug.contains("probe"), "{debug}");
    }
}
