//! Crash-safe checkpoint manifests for long searches.
//!
//! The paper saves every generation's population precisely so multi-hour
//! campaigns survive interruption; this module adds the missing half — a
//! manifest with everything the population files do *not* capture: the GA
//! RNG stream position, the id allocator, operator counters, the
//! convergence history, and the best-ever individual. Restoring a
//! manifest plus the matching population file continues a run
//! bit-identically to one that was never interrupted (asserted by the
//! `checkpoint_resume` integration tests).
//!
//! # On-disk format
//!
//! `checkpoint.bin` in the run's output directory, written atomically
//! (tmp + rename — see [`crate::output`]):
//!
//! ```text
//! magic   b"GESTCKP1"
//! u32     format version (currently 1)
//! u64     config fingerprint (FNV-1a of the run's config.xml rendering)
//! u32     next generation index to run
//! 4×u64   GA RNG state (xoshiro256** words)
//! u64     next candidate id
//! 5×u64   operator counters (selections, crossovers, mutated genes,
//!         elite copies, random genes)
//! varint  history length, then per generation:
//!         u32 generation, f64 best, f64 mean, u64 best id
//! u8      best-individual flag, then the individual (same encoding as
//!         population files)
//! ```
//!
//! The manifest references the current population only implicitly: the
//! population of generation `generation - 1` must be loadable from the
//! same directory. Populations are written before the manifest each
//! generation, so a crash between the two writes resumes from the older
//! manifest and deterministically re-runs (and harmlessly overwrites) the
//! generations after it.

use crate::error::GestError;
use crate::output::{atomic_write, SavedIndividual, WriteFs};
use gest_ga::{EngineState, GenerationSummary, OpCounts};
use gest_isa::codec::{Decoder, Encoder};
use gest_isa::CodecError;
use std::fs;
use std::path::Path;

/// Magic bytes identifying a checkpoint manifest.
const MAGIC: &[u8; 8] = b"GESTCKP1";

/// Current manifest format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// File name of the manifest inside a run's output directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.bin";

/// 64-bit FNV-1a over the run configuration's canonical XML rendering —
/// the fingerprint that ties a manifest to the exact configuration that
/// produced it. Resuming under a different pool, seed, GA setup, or
/// fitness would silently break bit-identity; the fingerprint turns that
/// into a loud [`GestError::Config`].
pub fn config_fingerprint(config_xml: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in config_xml.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Everything needed to continue a run from the end of a generation,
/// minus the population itself (stored next door in
/// `population_{gen}.bin`).
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Fingerprint of the configuration this manifest belongs to.
    pub config_fingerprint: u64,
    /// The next generation index to run (= generations completed so far).
    pub generation: u32,
    /// The GA engine's mutable state.
    pub engine: EngineState,
    /// Convergence history up to and including the checkpointed
    /// generation.
    pub history: Vec<GenerationSummary>,
    /// The best individual seen so far, if any generation completed.
    pub best: Option<SavedIndividual>,
}

impl Checkpoint {
    /// Serializes to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.bytes(MAGIC);
        enc.u32(CHECKPOINT_VERSION);
        enc.u64(self.config_fingerprint);
        enc.u32(self.generation);
        for word in self.engine.rng {
            enc.u64(word);
        }
        enc.u64(self.engine.next_id);
        enc.u64(self.engine.counts.selections);
        enc.u64(self.engine.counts.crossovers);
        enc.u64(self.engine.counts.mutated_genes);
        enc.u64(self.engine.counts.elite_copies);
        enc.u64(self.engine.counts.random_genes);
        enc.varint(self.history.len() as u64);
        for summary in &self.history {
            enc.u32(summary.generation);
            enc.f64(summary.best_fitness);
            enc.f64(summary.mean_fitness);
            enc.u64(summary.best_id);
        }
        match &self.best {
            None => {
                enc.u8(0);
            }
            Some(best) => {
                enc.u8(1);
                best.encode_into(&mut enc);
            }
        }
        enc.into_bytes()
    }

    /// Deserializes from bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError`] for truncated or corrupt input, wrong magic, or a
    /// format version this build does not understand.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CodecError> {
        let mut dec = Decoder::new(bytes);
        let magic = dec.bytes()?;
        if magic != MAGIC {
            return Err(CodecError::Invalid("not a GeST checkpoint manifest".into()));
        }
        let version = dec.u32()?;
        if version != CHECKPOINT_VERSION {
            return Err(CodecError::Invalid(format!(
                "checkpoint format version {version} is not supported \
                 (this build reads version {CHECKPOINT_VERSION})"
            )));
        }
        let config_fingerprint = dec.u64()?;
        let generation = dec.u32()?;
        let mut rng = [0u64; 4];
        for word in &mut rng {
            *word = dec.u64()?;
        }
        let engine = EngineState {
            rng,
            next_id: dec.u64()?,
            counts: OpCounts {
                selections: dec.u64()?,
                crossovers: dec.u64()?,
                mutated_genes: dec.u64()?,
                elite_copies: dec.u64()?,
                random_genes: dec.u64()?,
            },
        };
        let history_len = dec.varint()?;
        let mut history = Vec::with_capacity(history_len.min(1 << 20) as usize);
        for _ in 0..history_len {
            history.push(GenerationSummary {
                generation: dec.u32()?,
                best_fitness: dec.f64()?,
                mean_fitness: dec.f64()?,
                best_id: dec.u64()?,
            });
        }
        let best = match dec.u8()? {
            0 => None,
            1 => Some(SavedIndividual::decode_from(&mut dec)?),
            other => {
                return Err(CodecError::Invalid(format!(
                    "invalid best-individual flag {other}"
                )))
            }
        };
        Ok(Checkpoint {
            config_fingerprint,
            generation,
            engine,
            history,
            best,
        })
    }

    /// Writes the manifest atomically into `dir` as
    /// [`CHECKPOINT_FILE`].
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn save(&self, dir: &Path) -> Result<(), GestError> {
        atomic_write(&dir.join(CHECKPOINT_FILE), &self.encode())?;
        Ok(())
    }

    /// Like [`Checkpoint::save`], but through an explicit [`WriteFs`] —
    /// the seam fault-injection harnesses use to simulate disk-full and
    /// torn writes against the real persistence logic.
    ///
    /// # Errors
    ///
    /// I/O errors from the [`WriteFs`].
    pub fn save_via(&self, dir: &Path, fs: &dyn WriteFs) -> Result<(), GestError> {
        fs.write_atomic(&dir.join(CHECKPOINT_FILE), &self.encode())?;
        Ok(())
    }

    /// Loads the manifest from `dir`.
    ///
    /// # Errors
    ///
    /// [`GestError::Config`] when no manifest exists (the directory is not
    /// a checkpointed run); I/O and codec errors otherwise.
    pub fn load(dir: &Path) -> Result<Checkpoint, GestError> {
        let path = dir.join(CHECKPOINT_FILE);
        if !path.exists() {
            return Err(GestError::Config(format!(
                "no checkpoint manifest in {} — was the run started with \
                 checkpointing enabled (e.g. `gest run --checkpoint-every N`)?",
                dir.display()
            )));
        }
        let bytes = fs::read(&path)?;
        Ok(Checkpoint::decode(&bytes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gest_isa::Gene;

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            config_fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            generation: 42,
            engine: EngineState {
                rng: [1, 2, 3, u64::MAX],
                next_id: 2520,
                counts: OpCounts {
                    selections: 10,
                    crossovers: 5,
                    mutated_genes: 7,
                    elite_copies: 3,
                    random_genes: 480,
                },
            },
            history: (0..42)
                .map(|g| GenerationSummary {
                    generation: g,
                    best_fitness: f64::from(g) * 0.25,
                    mean_fitness: f64::from(g) * 0.125,
                    best_id: u64::from(g) * 7,
                })
                .collect(),
            best: Some(SavedIndividual {
                id: 287,
                parents: (Some(270), None),
                fitness: 10.25,
                measurements: vec![10.25, 0.5],
                genes: vec![Gene {
                    def_index: 0,
                    instrs: gest_isa::asm::parse_block("ADD x1, x2, x3").unwrap(),
                }],
            }),
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let checkpoint = sample_checkpoint();
        let decoded = Checkpoint::decode(&checkpoint.encode()).unwrap();
        assert_eq!(decoded, checkpoint);

        let mut no_best = sample_checkpoint();
        no_best.best = None;
        no_best.history.clear();
        assert_eq!(Checkpoint::decode(&no_best.encode()).unwrap(), no_best);
    }

    #[test]
    fn bad_magic_and_future_versions_rejected() {
        let mut enc = Encoder::new();
        enc.bytes(b"NOTACKPT");
        assert!(matches!(
            Checkpoint::decode(&enc.into_bytes()),
            Err(CodecError::Invalid(_))
        ));

        let mut enc = Encoder::new();
        enc.bytes(MAGIC);
        enc.u32(99);
        let err = Checkpoint::decode(&enc.into_bytes()).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
    }

    #[test]
    fn truncation_is_a_codec_error_not_a_panic() {
        let bytes = sample_checkpoint().encode();
        for len in [0, 4, 9, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Checkpoint::decode(&bytes[..len]).is_err(),
                "truncated to {len} bytes must fail cleanly"
            );
        }
    }

    #[test]
    fn save_load_round_trip_and_missing_manifest() {
        let dir = std::env::temp_dir().join(format!("gest_ckpt_test_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(Checkpoint::load(&dir), Err(GestError::Config(_))));
        let checkpoint = sample_checkpoint();
        checkpoint.save(&dir).unwrap();
        assert_eq!(Checkpoint::load(&dir).unwrap(), checkpoint);
        assert!(
            !dir.join("checkpoint.bin.tmp").exists(),
            "tmp file renamed away"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let a = config_fingerprint("<gest><target machine=\"cortex-a15\"/></gest>");
        let b = config_fingerprint("<gest><target machine=\"cortex-a15\"/></gest>");
        let c = config_fingerprint("<gest><target machine=\"cortex-a7\"/></gest>");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
