//! Content-addressed evaluation cache.
//!
//! GA populations are full of repeated programs: elites survive
//! generations unchanged, crossover recombines identical gene runs, and a
//! converged search measures near-duplicates constantly. Since the shipped
//! measurements are pure functions of program content (see
//! [`crate::Measurement::content_pure`]), re-simulating an
//! already-measured program is pure waste. This cache keys results by
//! `(configuration fingerprint, canonical gene hash)` and hands back the
//! exact measurement vector — bit-identical to a fresh simulation — on a
//! hit.
//!
//! Determinism: a hit returns the same bits a miss would recompute, so
//! cache size, eviction order, and thread scheduling can never change the
//! evolved result — they only change how much work is saved.
//!
//! The cache persists across crash/resume as an `evalcache.bin` sidecar
//! written alongside the checkpoint manifest (same atomic tmp+rename
//! discipline). The sidecar is an optimization, not state: a missing,
//! stale, or corrupt sidecar simply starts the cache cold. Since format
//! version 2 every record carries a CRC-32 of its own bytes, so a
//! bit-flipped sidecar (cosmic ray, torn storage) drops only the corrupt
//! records on load — the healthy remainder still warms the cache.

use crate::error::GestError;
use crate::output::{atomic_write, WriteFs};
use gest_isa::codec::{Decoder, Encoder};
use gest_isa::Gene;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Magic bytes identifying an evaluation-cache sidecar.
const MAGIC: &[u8; 8] = b"GESTEVC1";

/// Current sidecar format version. Version 2 added the per-record CRC-32
/// (version-1 sidecars are treated as stale and start the cache cold —
/// safe, because the sidecar is an optimization, never state).
const VERSION: u32 = 2;

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the per-record checksum
/// guarding sidecar records against silent corruption. Bitwise and
/// dependency-free; sidecar records are tens of bytes, so no table is
/// warranted.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// File name of the sidecar inside a run's output directory.
pub const EVAL_CACHE_FILE: &str = "evalcache.bin";

/// Canonical content hash of an individual's genes: 128-bit FNV-1a over
/// the same codec encoding population files use, so two individuals hash
/// equal exactly when they would be saved byte-identically.
pub fn genes_hash(genes: &[Gene]) -> u128 {
    let mut enc = Encoder::new();
    enc.varint(genes.len() as u64);
    for gene in genes {
        enc.varint(gene.def_index as u64);
        enc.instructions(&gene.instrs);
    }
    gest_ga::canonical_hash_bytes(&enc.into_bytes())
}

/// Cache key: which search configuration measured which program content.
///
/// The configuration fingerprint (see [`crate::config_fingerprint`])
/// covers the machine model, run budgets, measurement name, template, and
/// instruction pool — everything that could change a measurement besides
/// the genes themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EvalKey {
    /// FNV-1a 64 of the run's canonical `config.xml` rendering.
    pub config_fp: u64,
    /// Canonical gene-content hash ([`genes_hash`]).
    pub genes_hash: u128,
}

/// A cached evaluation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedEval {
    /// The measurement vector, in metric order.
    pub measurements: Vec<f64>,
    /// The simulator's full stat export (`RunResult::metric_kv`) when the
    /// measurement provided detail; replayed into telemetry histograms on
    /// a hit so observability is independent of hit rate. Dropped by the
    /// on-disk sidecar (restored entries report `None`).
    pub detail_kv: Option<Vec<(&'static str, f64)>>,
}

impl CachedEval {
    /// Approximate heap footprint, for the memory cap.
    fn payload_bytes(&self) -> usize {
        self.measurements.len() * 8
            + self
                .detail_kv
                .as_ref()
                .map_or(0, |kv| kv.len() * (8 + std::mem::size_of::<&str>()))
    }
}

/// Point-in-time counters of an [`EvalCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalCacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries stored (including overwrites of identical keys).
    pub inserts: u64,
    /// Entries evicted by the memory cap.
    pub evictions: u64,
    /// Sidecar records dropped on load because their CRC did not match
    /// (bit rot, torn storage). Zero except right after a resume from a
    /// damaged sidecar.
    pub corrupt_dropped: u64,
    /// Approximate bytes currently held.
    pub bytes: usize,
    /// Entries currently held.
    pub entries: usize,
}

impl EvalCacheStats {
    /// Hit rate in `[0, 1]`; 0.0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Fixed per-entry bookkeeping charged against the cap on top of the
/// payload (key, slab node, map slot).
const ENTRY_OVERHEAD: usize = 96;

const NIL: usize = usize::MAX;

/// One slab cell of the intrusive LRU list.
#[derive(Debug)]
struct Node {
    key: EvalKey,
    value: CachedEval,
    bytes: usize,
    prev: usize,
    next: usize,
}

/// Map + slab-backed doubly-linked LRU list.
#[derive(Debug)]
struct Inner {
    map: HashMap<EvalKey, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    /// Most recently used, or `NIL` when empty.
    head: usize,
    /// Least recently used, or `NIL` when empty.
    tail: usize,
    bytes: usize,
}

impl Inner {
    fn new() -> Inner {
        Inner {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
        }
    }

    fn unlink(&mut self, index: usize) {
        let (prev, next) = (self.nodes[index].prev, self.nodes[index].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    fn push_front(&mut self, index: usize) {
        self.nodes[index].prev = NIL;
        self.nodes[index].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = index;
        }
        self.head = index;
        if self.tail == NIL {
            self.tail = index;
        }
    }

    fn touch(&mut self, index: usize) {
        if self.head != index {
            self.unlink(index);
            self.push_front(index);
        }
    }
}

/// Thread-safe, LRU-bounded, content-addressed result cache.
///
/// # Examples
///
/// ```
/// use gest_core::{CachedEval, EvalCache, EvalKey};
/// let cache = EvalCache::new(1 << 20, 7);
/// let key = EvalKey { config_fp: 7, genes_hash: 42 };
/// assert!(cache.get(&key).is_none());
/// cache.insert(
///     key,
///     CachedEval { measurements: vec![1.5, 2.5], detail_kv: None },
/// );
/// assert_eq!(cache.get(&key).unwrap().measurements, vec![1.5, 2.5]);
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses), (1, 1));
/// ```
#[derive(Debug)]
pub struct EvalCache {
    inner: Mutex<Inner>,
    max_bytes: usize,
    config_fp: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    corrupt_dropped: AtomicU64,
}

impl EvalCache {
    /// Creates an empty cache capped at roughly `max_bytes` of payload,
    /// bound to one configuration fingerprint (used when persisting).
    pub fn new(max_bytes: usize, config_fp: u64) -> EvalCache {
        EvalCache {
            inner: Mutex::new(Inner::new()),
            max_bytes,
            config_fp,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corrupt_dropped: AtomicU64::new(0),
        }
    }

    /// Locks the LRU state, recovering from poison: a panic in one cache
    /// user (e.g. a panicking measurement plug-in unwinding through a
    /// worker thread) must not take the cache — and with it every other
    /// evaluation — down. The cached data is an optimization, so
    /// best-effort recovery is always safe: the worst case is a stale or
    /// missing entry, which behaves like a miss.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The configuration fingerprint this cache is bound to. Results are
    /// only valid for runs whose configuration hashes to the same value.
    pub fn config_fingerprint(&self) -> u64 {
        self.config_fp
    }

    /// Looks up a key, refreshing its recency on a hit.
    pub fn get(&self, key: &EvalKey) -> Option<CachedEval> {
        let mut inner = self.lock();
        match inner.map.get(key).copied() {
            Some(index) => {
                inner.touch(index);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(inner.nodes[index].value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Whether a key is present, *without* refreshing recency or counting
    /// a hit/miss. Used by surrogate screening to plan which candidates
    /// would simulate for free — a probe, not a use, so it must not skew
    /// the cache statistics or the LRU order.
    pub fn peek(&self, key: &EvalKey) -> bool {
        self.lock().map.contains_key(key)
    }

    /// Stores a result, evicting least-recently-used entries past the
    /// memory cap. Re-inserting an existing key replaces its value (the
    /// values are identical in practice — measurements are content-pure).
    pub fn insert(&self, key: EvalKey, value: CachedEval) {
        let bytes = value.payload_bytes() + ENTRY_OVERHEAD;
        let mut inner = self.lock();
        self.inserts.fetch_add(1, Ordering::Relaxed);
        if let Some(index) = inner.map.get(&key).copied() {
            inner.bytes = inner.bytes - inner.nodes[index].bytes + bytes;
            inner.nodes[index].value = value;
            inner.nodes[index].bytes = bytes;
            inner.touch(index);
        } else {
            let index = match inner.free.pop() {
                Some(index) => {
                    inner.nodes[index] = Node {
                        key,
                        value,
                        bytes,
                        prev: NIL,
                        next: NIL,
                    };
                    index
                }
                None => {
                    inner.nodes.push(Node {
                        key,
                        value,
                        bytes,
                        prev: NIL,
                        next: NIL,
                    });
                    inner.nodes.len() - 1
                }
            };
            inner.push_front(index);
            inner.map.insert(key, index);
            inner.bytes += bytes;
        }
        while inner.bytes > self.max_bytes && inner.map.len() > 1 {
            let victim = inner.tail;
            inner.unlink(victim);
            let victim_key = inner.nodes[victim].key;
            inner.map.remove(&victim_key);
            inner.bytes -= inner.nodes[victim].bytes;
            inner.nodes[victim].value = CachedEval {
                measurements: Vec::new(),
                detail_kv: None,
            };
            inner.free.push(victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> EvalCacheStats {
        let inner = self.lock();
        EvalCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corrupt_dropped: self.corrupt_dropped.load(Ordering::Relaxed),
            bytes: inner.bytes,
            entries: inner.map.len(),
        }
    }

    /// Serializes the entries (least recent first, so loading restores
    /// recency order). Each record is length-prefixed and carries a
    /// CRC-32 of its bytes, so load can drop individually corrupted
    /// records instead of discarding the whole sidecar. Detail key/value
    /// exports are dropped: they hold `&'static str` keys that cannot be
    /// restored from disk, and only telemetry consumes them.
    pub fn encode(&self) -> Vec<u8> {
        let inner = self.lock();
        let mut enc = Encoder::new();
        enc.bytes(MAGIC);
        enc.u32(VERSION);
        enc.u64(self.config_fp);
        enc.varint(inner.map.len() as u64);
        let mut index = inner.tail;
        while index != NIL {
            let node = &inner.nodes[index];
            let mut record = Encoder::new();
            record.u64((node.key.genes_hash >> 64) as u64);
            record.u64(node.key.genes_hash as u64);
            record.varint(node.value.measurements.len() as u64);
            for &m in &node.value.measurements {
                record.f64(m);
            }
            let record = record.into_bytes();
            enc.bytes(&record);
            enc.u32(crc32(&record));
            index = node.prev;
        }
        enc.into_bytes()
    }

    /// Writes the sidecar atomically into `dir` as [`EVAL_CACHE_FILE`].
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn save(&self, dir: &Path) -> Result<(), GestError> {
        atomic_write(&dir.join(EVAL_CACHE_FILE), &self.encode())?;
        Ok(())
    }

    /// Like [`EvalCache::save`], but through an explicit [`WriteFs`] —
    /// the seam fault-injection harnesses use to simulate disk-full and
    /// corrupted sidecar writes against the real persistence logic.
    ///
    /// # Errors
    ///
    /// I/O errors from the [`WriteFs`].
    pub fn save_via(&self, dir: &Path, fs: &dyn WriteFs) -> Result<(), GestError> {
        fs.write_atomic(&dir.join(EVAL_CACHE_FILE), &self.encode())?;
        Ok(())
    }

    /// Loads a sidecar from `dir` into a fresh cache. Missing, stale, or
    /// fingerprint-mismatched sidecars yield an empty cache — the sidecar
    /// is an optimization, never required state. Records whose CRC does
    /// not match (bit rot, torn storage) are dropped individually with a
    /// single warning; the healthy remainder still loads (counted in
    /// [`EvalCacheStats::corrupt_dropped`]). Structural damage past the
    /// last decodable record keeps whatever loaded before it.
    pub fn load(dir: &Path, config_fp: u64, max_bytes: usize) -> EvalCache {
        let cache = EvalCache::new(max_bytes, config_fp);
        let Ok(bytes) = std::fs::read(dir.join(EVAL_CACHE_FILE)) else {
            return cache;
        };
        let mut dec = Decoder::new(&bytes);
        let header_ok = (|| -> Result<bool, gest_isa::CodecError> {
            Ok(dec.bytes()? == MAGIC && dec.u32()? == VERSION && dec.u64()? == config_fp)
        })();
        if !header_ok.unwrap_or(false) {
            return cache;
        }
        let Ok(count) = dec.varint() else {
            return cache;
        };
        let mut dropped: u64 = 0;
        for _ in 0..count {
            // A failure here is structural (a corrupted length prefix
            // desynchronized the stream): stop, keeping earlier records.
            let Ok((record, stored_crc)) = (|| -> Result<(&[u8], u32), gest_isa::CodecError> {
                Ok((dec.bytes()?, dec.u32()?))
            })() else {
                dropped += 1;
                break;
            };
            if crc32(record) != stored_crc {
                dropped += 1;
                continue;
            }
            let Ok((genes_hash, measurements)) =
                (|| -> Result<(u128, Vec<f64>), gest_isa::CodecError> {
                    let mut rec = Decoder::new(record);
                    let hi = rec.u64()?;
                    let lo = rec.u64()?;
                    let n = rec.varint()?;
                    let mut measurements = Vec::with_capacity(n.min(1 << 10) as usize);
                    for _ in 0..n {
                        measurements.push(rec.f64()?);
                    }
                    Ok(((u128::from(hi) << 64) | u128::from(lo), measurements))
                })()
            else {
                // CRC matched but the record does not decode: a schema
                // bug rather than bit rot; drop just this record.
                dropped += 1;
                continue;
            };
            cache.insert(
                EvalKey {
                    config_fp,
                    genes_hash,
                },
                CachedEval {
                    measurements,
                    detail_kv: None,
                },
            );
        }
        if dropped > 0 {
            eprintln!(
                "warning: eval-cache sidecar in {} had {dropped} corrupt record{} \
                 (dropped; the healthy remainder still warms the cache)",
                dir.display(),
                if dropped == 1 { "" } else { "s" }
            );
        }
        // Loading went through insert: reset the counters it inflated.
        cache.inserts.store(0, Ordering::Relaxed);
        cache.misses.store(0, Ordering::Relaxed);
        cache.hits.store(0, Ordering::Relaxed);
        cache.evictions.store(0, Ordering::Relaxed);
        cache.corrupt_dropped.store(dropped, Ordering::Relaxed);
        cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(h: u128) -> EvalKey {
        EvalKey {
            config_fp: 99,
            genes_hash: h,
        }
    }

    fn value(seed: f64) -> CachedEval {
        CachedEval {
            measurements: vec![seed, seed * 2.0, seed * 3.0],
            detail_kv: Some(vec![("ipc", seed)]),
        }
    }

    #[test]
    fn hit_returns_exact_bits() {
        let cache = EvalCache::new(1 << 20, 99);
        let v = CachedEval {
            measurements: vec![0.1 + 0.2, f64::MIN_POSITIVE, -0.0],
            detail_kv: None,
        };
        cache.insert(key(1), v.clone());
        let out = cache.get(&key(1)).unwrap();
        assert_eq!(
            out.measurements
                .iter()
                .map(|m| m.to_bits())
                .collect::<Vec<_>>(),
            v.measurements
                .iter()
                .map(|m| m.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn lru_evicts_oldest_under_pressure() {
        // Three entries of 144 bytes each; cap at two of them.
        let cache = EvalCache::new(300, 99);
        cache.insert(key(1), value(1.0));
        cache.insert(key(2), value(2.0));
        let _ = cache.get(&key(1)); // refresh 1; 2 becomes LRU
        cache.insert(key(3), value(3.0));
        assert!(cache.get(&key(2)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes <= 300);
    }

    #[test]
    fn reinsert_replaces_without_growth() {
        let cache = EvalCache::new(1 << 20, 99);
        cache.insert(key(5), value(1.0));
        let before = cache.stats().bytes;
        cache.insert(key(5), value(2.0));
        assert_eq!(cache.stats().bytes, before);
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.get(&key(5)).unwrap().measurements[0], 2.0);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let cache = EvalCache::new(1 << 20, 99);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), value(1.0));
        assert!(cache.get(&key(1)).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(EvalCacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn sidecar_round_trips_and_rejects_mismatches() {
        let dir = std::env::temp_dir().join(format!("gest_evc_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let cache = EvalCache::new(1 << 20, 99);
        cache.insert(key(1), value(1.0));
        cache.insert(key(2), value(2.0));
        cache.save(&dir).unwrap();

        let restored = EvalCache::load(&dir, 99, 1 << 20);
        let out = restored.get(&key(2)).unwrap();
        assert_eq!(out.measurements, value(2.0).measurements);
        assert!(out.detail_kv.is_none(), "detail is not persisted");
        assert_eq!(restored.stats().entries, 2);
        assert_eq!(restored.stats().inserts, 0, "loading is not inserting");

        // Another fingerprint ignores the sidecar.
        assert_eq!(EvalCache::load(&dir, 100, 1 << 20).stats().entries, 0);
        // Corruption degrades to an empty cache, never an error.
        std::fs::write(dir.join(EVAL_CACHE_FILE), b"garbage").unwrap();
        assert_eq!(EvalCache::load(&dir, 99, 1 << 20).stats().entries, 0);
        // Missing file likewise.
        std::fs::remove_file(dir.join(EVAL_CACHE_FILE)).unwrap();
        assert_eq!(EvalCache::load(&dir, 99, 1 << 20).stats().entries, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flipped_sidecar_drops_only_corrupt_records() {
        let dir = std::env::temp_dir().join(format!("gest_evc_crc_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let cache = EvalCache::new(1 << 20, 99);
        cache.insert(key(1), value(1.0));
        cache.insert(key(2), value(2.0));
        cache.insert(key(3), value(3.0));
        cache.save(&dir).unwrap();

        // Flip one bit in the final record (its trailing CRC byte): only
        // that record may be lost.
        let mut bytes = std::fs::read(dir.join(EVAL_CACHE_FILE)).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(dir.join(EVAL_CACHE_FILE), &bytes).unwrap();

        let restored = EvalCache::load(&dir, 99, 1 << 20);
        let stats = restored.stats();
        assert_eq!(stats.entries, 2, "healthy records still load");
        assert_eq!(stats.corrupt_dropped, 1);
        // Records are saved least-recent first, so the damaged final
        // record is the most recently used key.
        assert!(restored.get(&key(1)).is_some());
        assert!(restored.get(&key(2)).is_some());
        assert!(restored.get(&key(3)).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_sidecar_keeps_records_before_the_tear() {
        let dir = std::env::temp_dir().join(format!("gest_evc_trunc_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let cache = EvalCache::new(1 << 20, 99);
        cache.insert(key(1), value(1.0));
        cache.insert(key(2), value(2.0));
        cache.insert(key(3), value(3.0));
        cache.save(&dir).unwrap();

        let bytes = std::fs::read(dir.join(EVAL_CACHE_FILE)).unwrap();
        std::fs::write(dir.join(EVAL_CACHE_FILE), &bytes[..bytes.len() - 6]).unwrap();

        let restored = EvalCache::load(&dir, 99, 1 << 20);
        let stats = restored.stats();
        assert_eq!(stats.entries, 2, "records before the tear survive");
        assert!(stats.corrupt_dropped >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Hammers a cache from 8 threads: each thread inserts its own key
    /// range once and performs two lookups per key (its own plus a
    /// neighbour's). Returns (total inserts, total lookups).
    fn hammer(cache: &EvalCache) -> (u64, u64) {
        const THREADS: u64 = 8;
        const KEYS_PER_THREAD: u64 = 400;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..KEYS_PER_THREAD {
                        let own = key(u128::from(t * KEYS_PER_THREAD + i));
                        cache.insert(own, value(i as f64));
                        let _ = cache.get(&own);
                        let neighbour = key(u128::from(((t + 1) % THREADS) * KEYS_PER_THREAD + i));
                        let _ = cache.get(&neighbour);
                    }
                });
            }
        });
        (THREADS * KEYS_PER_THREAD, 2 * THREADS * KEYS_PER_THREAD)
    }

    #[test]
    fn counters_stay_consistent_under_parallel_hammering() {
        // Roomy cache: nothing is ever evicted, so occupancy must equal
        // the number of distinct keys and every lookup must be accounted.
        let cache = EvalCache::new(64 << 20, 99);
        let (inserts, lookups) = hammer(&cache);
        let stats = cache.stats();
        assert_eq!(stats.inserts, inserts);
        assert_eq!(stats.hits + stats.misses, lookups, "no lookup lost");
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.entries as u64, inserts, "distinct keys all held");
        assert!(stats.hits >= inserts, "own-key lookups cannot miss");
    }

    #[test]
    fn eviction_counters_stay_consistent_under_parallel_hammering() {
        // Tiny cap: eviction churns constantly while 8 threads race.
        // Every key is inserted exactly once, so whatever was not evicted
        // must still be resident — and the byte cap must hold.
        let cache = EvalCache::new(2_000, 99);
        let (inserts, lookups) = hammer(&cache);
        let stats = cache.stats();
        assert_eq!(stats.inserts, inserts);
        assert_eq!(stats.hits + stats.misses, lookups, "no lookup lost");
        assert_eq!(
            stats.entries as u64 + stats.evictions,
            inserts,
            "every insert is either resident or counted as evicted"
        );
        assert!(stats.evictions > 0, "the cap must have triggered");
        assert!(stats.bytes <= 2_000, "cap respected: {stats:?}");
    }

    #[test]
    fn genes_hash_is_content_addressed() {
        let genes_a = vec![gest_isa::Gene {
            def_index: 0,
            instrs: gest_isa::asm::parse_block("ADD x1, x2, x3").unwrap(),
        }];
        let genes_b = vec![gest_isa::Gene {
            def_index: 0,
            instrs: gest_isa::asm::parse_block("ADD x1, x2, x4").unwrap(),
        }];
        assert_eq!(genes_hash(&genes_a), genes_hash(&genes_a.clone()));
        assert_ne!(genes_hash(&genes_a), genes_hash(&genes_b));
        let different_def = vec![gest_isa::Gene {
            def_index: 1,
            ..genes_a[0].clone()
        }];
        assert_ne!(genes_hash(&genes_a), genes_hash(&different_def));
    }
}
