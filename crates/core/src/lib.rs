#![warn(missing_docs)]

//! The GeST framework: automatic CPU stress-test generation by genetic
//! algorithm search (reproduction of Hadjilambrou et al., ISPASS 2019).
//!
//! The framework ties together the five parts of paper Figure 1:
//!
//! 1. **Inputs** — [`GestConfig`]: GA parameters, the instruction/operand
//!    pool (paper Figure 4 schema, loadable from XML via
//!    [`GestConfig::from_xml_str`]), the template source with its
//!    `#loop_code` marker, and the names of the measurement and fitness
//!    plug-ins to use.
//! 2. **GA engine** — reused from [`gest_ga`], specialized to instruction
//!    genes by [`PoolGenetics`].
//! 3. **Measurement** — the [`Measurement`] trait (the paper's
//!    `Measurement.py`); shipped implementations run programs on the
//!    simulated machines from [`gest_sim`] and report average power,
//!    chip temperature, IPC, or oscilloscope-style voltage-noise numbers.
//! 4. **Fitness evaluation** — the [`Fitness`] trait (the paper's
//!    `DefaultFitness.py`), including the multi-objective
//!    temperature + instruction-simplicity function of paper Equation 1.
//! 5. **Outputs** — per-individual source files named
//!    `{generation}_{id}_{measurement...}.txt` and per-generation binary
//!    population files that can be post-processed ([`stats`]) or used to
//!    seed a new search, exactly as §III.D describes.
//!
//! # Examples
//!
//! A miniature power-virus search on the Cortex-A15 model:
//!
//! ```
//! # fn main() -> Result<(), gest_core::GestError> {
//! use gest_core::{GestConfig, GestRun};
//!
//! let config = GestConfig::builder("cortex-a15")
//!     .measurement("power")
//!     .population_size(8)
//!     .individual_size(10)
//!     .generations(3)
//!     .seed(42)
//!     .build()?;
//! let summary = GestRun::builder().config(config).build()?.run()?;
//! assert!(summary.best.fitness > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! Long searches survive crashes: run with
//! [`GestConfigBuilder::checkpoint_every`] set and an output directory,
//! then [`GestRun::resume`] the directory after an interruption — the
//! resumed search continues bit-identically (see [`checkpoint`]).

pub mod checkpoint;
mod config;
mod error;
mod evalbackend;
mod evalcache;
mod fault;
mod fitness;
mod genetics;
pub mod health;
mod measurement;
mod output;
mod pools;
mod registry;
mod runner;
pub mod stats;
pub mod surrogate;

pub use checkpoint::{config_fingerprint, Checkpoint, CHECKPOINT_FILE, CHECKPOINT_VERSION};
pub use config::{GestConfig, GestConfigBuilder};
pub use error::GestError;
pub use evalbackend::{catch_measure, watchdog_measure, EvalBackend, EvalRequest, LocalBackend};
pub use evalcache::{genes_hash, CachedEval, EvalCache, EvalCacheStats, EvalKey, EVAL_CACHE_FILE};
pub use fault::{FaultPolicy, QUARANTINE_FITNESS};
#[allow(deprecated)]
pub use fitness::fitness_by_name;
pub use fitness::{
    DefaultFitness, Fitness, FitnessContext, IpcPowerFitness, TempSimplicityFitness,
};
pub use genetics::PoolGenetics;
#[allow(deprecated)]
pub use measurement::measurement_by_name;
pub use measurement::{
    sim_fast_path_stats, CacheMissMeasurement, IpcMeasurement, MeasuredBatch, Measurement,
    NoisyMeasurement, PowerMeasurement, SimFastPathStats, TemperatureMeasurement,
    VoltageNoiseMeasurement,
};
pub use output::{OutputWriter, RealFs, RunIdAllocator, SavedIndividual, SavedPopulation, WriteFs};
pub use pools::{didt_pool, full_pool, ipc_pool, llc_pool, power_pool};
pub use registry::{FitnessParams, Registry};
pub use runner::{GestRun, GestRunBuilder, RunSummary, StepOutcome, SurrogateStats};
pub use surrogate::{SurrogateMode, SurrogateModel, SurrogateOptions};
