//! The main configuration (the paper's main XML configuration file).

use crate::error::GestError;
use crate::fault::FaultPolicy;
use crate::pools::full_pool;
use gest_ga::{CrossoverOp, GaConfig, SelectionOp};
use gest_isa::{pool_from_xml, pool_to_xml, InstructionPool, Template};
use gest_sim::{MachineConfig, RunConfig};
use gest_xml::{Document, Element};
use std::path::PathBuf;
use std::sync::Arc;

/// Everything a GeST run needs (paper Figure 1, "inputs").
#[derive(Debug, Clone)]
pub struct GestConfig {
    /// The target machine model.
    pub machine: MachineConfig,
    /// Which measurement plug-in to use (resolved by name, like the
    /// paper's dynamically-loaded measurement classes).
    pub measurement_name: String,
    /// Which fitness plug-in to use.
    pub fitness_name: String,
    /// GA engine parameters (paper Table I).
    pub ga: GaConfig,
    /// Number of generations to run.
    pub generations: u32,
    /// RNG seed; equal seeds reproduce runs exactly.
    pub seed: u64,
    /// Simulated-measurement parameters.
    pub run_config: RunConfig,
    /// The instruction/operand search space.
    pub pool: Arc<InstructionPool>,
    /// The template the individuals are printed into.
    pub template: Template,
    /// Where to save outputs (`None` disables saving).
    pub output_dir: Option<PathBuf>,
    /// A previous run's population file to seed from.
    pub seed_population: Option<PathBuf>,
    /// Worker threads for individual evaluation (0 = all available).
    pub threads: usize,
    /// Candidates each evaluation slot batches through the simulator's
    /// lockstep lanes per backend call (`0` and `1` both mean the
    /// single-candidate path). Like `threads`, an execution detail: it is
    /// not serialized to XML, never perturbs checkpoint fingerprints, and
    /// any width produces byte-identical search artifacts — wider lanes
    /// only amortize per-run setup.
    pub lane_width: usize,
    /// Write a crash-recovery checkpoint manifest every N generations
    /// (requires `output_dir`; `None` disables checkpointing). The last
    /// generation is always checkpointed when enabled, so a completed run
    /// can be extended by raising `generations` and resuming.
    pub checkpoint_every: Option<u32>,
    /// How measurement failures of individual candidates are handled
    /// (retries, deadline, quarantine) — see [`FaultPolicy`].
    pub fault_policy: FaultPolicy,
    /// Probability a mutation replaces the whole instruction (vs one
    /// operand).
    pub whole_instruction_mutation_prob: f64,
    /// A concrete fitness instance overriding `fitness_name` — the
    /// programmatic equivalent of dropping a custom fitness class next to
    /// the framework (paper §III.C). `None` resolves `fitness_name` from
    /// the shipped registry.
    pub fitness_override: Option<std::sync::Arc<dyn crate::Fitness>>,
    /// Observability handle the run reports spans and metrics through.
    /// Disabled by default (near-zero overhead); telemetry only observes
    /// the search, so enabling it never changes the evolved result.
    pub telemetry: gest_telemetry::Telemetry,
    /// Content-addressed evaluation caching: identical candidates (same
    /// genes, same run configuration) reuse earlier measurements instead
    /// of re-simulating. Only content-pure measurements are cached, so
    /// caching never changes the evolved result. Not serialized to XML —
    /// like `threads`, it is an execution detail, not part of the search's
    /// identity, and must not perturb checkpoint fingerprints.
    pub eval_cache: bool,
    /// Memory cap of the evaluation cache, in bytes (approximate; counts
    /// entry payloads and bookkeeping). Least-recently-used entries are
    /// evicted past the cap.
    pub eval_cache_bytes: usize,
    /// Surrogate-screened evaluation (off by default). Like `threads` and
    /// `lane_width`, an execution-policy knob: not serialized to XML and
    /// never perturbs checkpoint fingerprints — but unlike those, it *does*
    /// change which candidates are fully simulated, so screened and
    /// unscreened runs evolve different populations. Same-seed screened
    /// runs are byte-identical to each other.
    pub surrogate: crate::surrogate::SurrogateOptions,
}

/// Default evaluation-cache memory cap: 64 MiB holds hundreds of
/// thousands of cached measurements — far more than a typical search.
pub(crate) const DEFAULT_EVAL_CACHE_BYTES: usize = 64 << 20;

impl GestConfig {
    /// Starts a builder targeting a preset machine by name
    /// (`cortex-a15`, `cortex-a7`, `xgene2`, `athlon-x4`).
    pub fn builder(machine: &str) -> GestConfigBuilder {
        GestConfigBuilder::new(machine)
    }

    /// Parses a main configuration from XML text.
    ///
    /// # Errors
    ///
    /// [`GestError::Xml`] for malformed XML, [`GestError::Config`] for
    /// schema problems, and pool/template errors from their parsers.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), gest_core::GestError> {
    /// let config = gest_core::GestConfig::from_xml_str(
    ///     r#"<gest>
    ///          <target machine="cortex-a15" measurement="power" fitness="default"/>
    ///          <ga population_size="10" individual_size="20" generations="5" seed="7"/>
    ///        </gest>"#,
    /// )?;
    /// assert_eq!(config.machine.name, "cortex-a15");
    /// assert_eq!(config.ga.population_size, 10);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_xml_str(text: &str) -> Result<GestConfig, GestError> {
        let doc = Document::parse(text)?;
        let root = doc.root();
        if root.name() != "gest" {
            return Err(GestError::Config(format!(
                "root element must be <gest>, found <{}>",
                root.name()
            )));
        }
        let target = root
            .child("target")
            .ok_or_else(|| GestError::Config("missing <target> element".into()))?;
        let machine_name = target
            .attr("machine")
            .ok_or_else(|| GestError::Config("<target> missing machine attribute".into()))?;
        let mut builder = GestConfigBuilder::new(machine_name);
        if let Some(measurement) = target.attr("measurement") {
            builder = builder.measurement(measurement);
        }
        if let Some(fitness) = target.attr("fitness") {
            builder = builder.fitness(fitness);
        }
        if let Some(ga) = root.child("ga") {
            builder = builder.apply_ga_element(ga)?;
        }
        if let Some(run) = root.child("run") {
            if let Some(value) = run.attr("max_iterations") {
                builder.run_config.max_iterations = parse_attr("max_iterations", value)?;
            }
            if let Some(value) = run.attr("max_cycles") {
                builder.run_config.max_cycles = parse_attr("max_cycles", value)?;
            }
            if let Some(value) = run.attr("thermal_hold_s") {
                builder.run_config.thermal_hold_s = parse_attr("thermal_hold_s", value)?;
            }
            if let Some(value) = run.attr("checkpoint_every") {
                builder.checkpoint_every = Some(parse_attr("checkpoint_every", value)?);
            }
        }
        if let Some(fault) = root.child("fault") {
            if let Some(value) = fault.attr("max_retries") {
                builder.fault_policy.max_retries = parse_attr("max_retries", value)?;
            }
            if let Some(value) = fault.attr("backoff_ms") {
                builder.fault_policy.backoff_base_ms = parse_attr("backoff_ms", value)?;
            }
            if let Some(value) = fault.attr("deadline_ms") {
                builder.fault_policy.deadline_ms = Some(parse_attr("deadline_ms", value)?);
            }
            if let Some(value) = fault.attr("watchdog_ms") {
                builder.fault_policy.watchdog_ms = Some(parse_attr("watchdog_ms", value)?);
            }
            if let Some(value) = fault.attr("quarantine") {
                builder.fault_policy.quarantine = parse_attr("quarantine", value)?;
            }
        }
        if let Some(output) = root.child("output") {
            if let Some(dir) = output.attr("dir") {
                builder = builder.output_dir(dir);
            }
        }
        if let Some(seed_pop) = root.child("seed_population") {
            let file = seed_pop.attr("file").ok_or_else(|| {
                GestError::Config("<seed_population> missing file attribute".into())
            })?;
            builder = builder.seed_population(file);
        }
        if let Some(instructions) = root.child("instructions") {
            builder = builder.pool(pool_from_xml(instructions)?);
        }
        if let Some(template) = root.child("template") {
            builder = builder.template(Template::parse(&template.text())?);
        }
        builder.build()
    }

    /// Serializes the run-relevant settings back to XML for record-keeping
    /// (the paper saves the configuration files in every output
    /// directory).
    pub fn to_xml(&self) -> Element {
        let mut root = Element::new("gest");
        let mut target = Element::new("target");
        target.set_attr("machine", &self.machine.name);
        target.set_attr("measurement", &self.measurement_name);
        target.set_attr("fitness", &self.fitness_name);
        root.push_child(target);

        let mut ga = Element::new("ga");
        ga.set_attr("population_size", self.ga.population_size.to_string());
        ga.set_attr("individual_size", self.ga.individual_size.to_string());
        ga.set_attr("mutation_rate", self.ga.mutation_rate.to_string());
        ga.set_attr(
            "crossover",
            match self.ga.crossover {
                CrossoverOp::OnePoint => "one_point",
                CrossoverOp::Uniform => "uniform",
            },
        );
        ga.set_attr("elitism", self.ga.elitism.to_string());
        let SelectionOp::Tournament { size } = self.ga.selection;
        ga.set_attr("tournament_size", size.to_string());
        ga.set_attr("generations", self.generations.to_string());
        ga.set_attr("seed", self.seed.to_string());
        root.push_child(ga);

        let mut run = Element::new("run");
        run.set_attr("max_iterations", self.run_config.max_iterations.to_string());
        run.set_attr("max_cycles", self.run_config.max_cycles.to_string());
        if let Some(every) = self.checkpoint_every {
            run.set_attr("checkpoint_every", every.to_string());
        }
        root.push_child(run);

        let mut fault = Element::new("fault");
        fault.set_attr("max_retries", self.fault_policy.max_retries.to_string());
        fault.set_attr("backoff_ms", self.fault_policy.backoff_base_ms.to_string());
        if let Some(deadline) = self.fault_policy.deadline_ms {
            fault.set_attr("deadline_ms", deadline.to_string());
        }
        if let Some(watchdog) = self.fault_policy.watchdog_ms {
            fault.set_attr("watchdog_ms", watchdog.to_string());
        }
        fault.set_attr("quarantine", self.fault_policy.quarantine.to_string());
        root.push_child(fault);

        if let Some(dir) = &self.output_dir {
            let mut output = Element::new("output");
            output.set_attr("dir", dir.display().to_string());
            root.push_child(output);
        }
        if let Some(file) = &self.seed_population {
            let mut seed = Element::new("seed_population");
            seed.set_attr("file", file.display().to_string());
            root.push_child(seed);
        }

        root.push_child(pool_to_xml(&self.pool));

        let mut template = Element::new("template");
        template.push_text_node(format!("\n{}", self.template.to_source()));
        root.push_child(template);
        root
    }
}

fn parse_attr<T: std::str::FromStr>(name: &str, value: &str) -> Result<T, GestError> {
    value
        .parse()
        .map_err(|_| GestError::Config(format!("attribute {name}: cannot parse {value:?}")))
}

/// Builder for [`GestConfig`].
#[derive(Debug, Clone)]
pub struct GestConfigBuilder {
    machine_name: String,
    machine_override: Option<MachineConfig>,
    measurement_name: String,
    fitness_name: String,
    ga: GaConfig,
    generations: u32,
    seed: u64,
    run_config: RunConfig,
    pool: Option<InstructionPool>,
    template: Option<Template>,
    output_dir: Option<PathBuf>,
    seed_population: Option<PathBuf>,
    threads: usize,
    lane_width: usize,
    checkpoint_every: Option<u32>,
    fault_policy: FaultPolicy,
    whole_instruction_mutation_prob: f64,
    fitness_override: Option<std::sync::Arc<dyn crate::Fitness>>,
    telemetry: gest_telemetry::Telemetry,
    eval_cache: bool,
    eval_cache_bytes: usize,
    surrogate: crate::surrogate::SurrogateOptions,
}

impl GestConfigBuilder {
    fn new(machine: &str) -> GestConfigBuilder {
        GestConfigBuilder {
            machine_name: machine.to_owned(),
            machine_override: None,
            measurement_name: "power".into(),
            fitness_name: "default".into(),
            ga: GaConfig::default(),
            generations: 20,
            seed: 0,
            run_config: RunConfig::quick(),
            pool: None,
            template: None,
            output_dir: None,
            seed_population: None,
            threads: 0,
            lane_width: 1,
            checkpoint_every: None,
            fault_policy: FaultPolicy::default(),
            whole_instruction_mutation_prob: 0.5,
            fitness_override: None,
            telemetry: gest_telemetry::Telemetry::disabled(),
            eval_cache: true,
            eval_cache_bytes: DEFAULT_EVAL_CACHE_BYTES,
            surrogate: crate::surrogate::SurrogateOptions::default(),
        }
    }

    /// Configures surrogate-screened evaluation (off by default); see
    /// [`crate::surrogate`].
    pub fn surrogate(mut self, options: crate::surrogate::SurrogateOptions) -> Self {
        self.surrogate = options;
        self
    }

    /// Enables or disables the content-addressed evaluation cache
    /// (enabled by default).
    pub fn eval_cache(mut self, on: bool) -> Self {
        self.eval_cache = on;
        self
    }

    /// Sets the evaluation cache's approximate memory cap in bytes.
    pub fn eval_cache_bytes(mut self, bytes: usize) -> Self {
        self.eval_cache_bytes = bytes;
        self
    }

    /// Installs an observability handle; the run reports spans, progress
    /// points, and metrics through it (see the `gest-telemetry` crate).
    pub fn telemetry(mut self, telemetry: gest_telemetry::Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Installs a custom fitness implementation (overrides the name-based
    /// registry lookup), mirroring the paper's user-written fitness
    /// classes.
    pub fn fitness_impl(mut self, fitness: std::sync::Arc<dyn crate::Fitness>) -> Self {
        self.fitness_override = Some(fitness);
        self
    }

    /// Uses a custom machine model instead of a preset.
    pub fn machine_config(mut self, machine: MachineConfig) -> Self {
        self.machine_override = Some(machine);
        self
    }

    /// Selects the measurement plug-in by name.
    pub fn measurement(mut self, name: &str) -> Self {
        self.measurement_name = name.to_owned();
        self
    }

    /// Selects the fitness plug-in by name.
    pub fn fitness(mut self, name: &str) -> Self {
        self.fitness_name = name.to_owned();
        self
    }

    /// Sets the GA population size.
    pub fn population_size(mut self, size: usize) -> Self {
        self.ga.population_size = size;
        self
    }

    /// Sets the individual (loop) length and adjusts the mutation rate to
    /// the paper's one-mutation-per-individual rule of thumb.
    pub fn individual_size(mut self, size: usize) -> Self {
        self.ga.individual_size = size;
        self.ga.mutation_rate = GaConfig::mutation_rate_for(size);
        self
    }

    /// Sets the mutation rate explicitly.
    pub fn mutation_rate(mut self, rate: f64) -> Self {
        self.ga.mutation_rate = rate;
        self
    }

    /// Sets the crossover operator.
    pub fn crossover(mut self, op: CrossoverOp) -> Self {
        self.ga.crossover = op;
        self
    }

    /// Enables or disables elitism.
    pub fn elitism(mut self, on: bool) -> Self {
        self.ga.elitism = on;
        self
    }

    /// Sets the number of generations.
    pub fn generations(mut self, generations: u32) -> Self {
        self.generations = generations;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-measurement simulation budget.
    pub fn run_config(mut self, run_config: RunConfig) -> Self {
        self.run_config = run_config;
        self
    }

    /// Sets the instruction pool.
    pub fn pool(mut self, pool: InstructionPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Sets the template.
    pub fn template(mut self, template: Template) -> Self {
        self.template = Some(template);
        self
    }

    /// Enables output saving into the given directory.
    pub fn output_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.output_dir = Some(dir.into());
        self
    }

    /// Seeds the first generation from a saved population file.
    pub fn seed_population(mut self, file: impl Into<PathBuf>) -> Self {
        self.seed_population = Some(file.into());
        self
    }

    /// Sets the evaluation thread count (0 = all available cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets how many candidates each evaluation slot batches through the
    /// simulator's lockstep lanes (0/1 = the single-candidate path). An
    /// execution detail like [`threads`](Self::threads): results are
    /// byte-identical at every width.
    pub fn lane_width(mut self, lane_width: usize) -> Self {
        self.lane_width = lane_width;
        self
    }

    /// Writes a crash-recovery checkpoint manifest every `every`
    /// generations (requires an output directory to take effect).
    pub fn checkpoint_every(mut self, every: u32) -> Self {
        self.checkpoint_every = Some(every);
        self
    }

    /// Sets the measurement fault-handling policy.
    pub fn fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault_policy = policy;
        self
    }

    /// Sets the whole-instruction vs operand mutation split.
    pub fn whole_instruction_mutation_prob(mut self, prob: f64) -> Self {
        self.whole_instruction_mutation_prob = prob;
        self
    }

    fn apply_ga_element(mut self, ga: &Element) -> Result<Self, GestError> {
        if let Some(value) = ga.attr("population_size") {
            self.ga.population_size = parse_attr("population_size", value)?;
        }
        if let Some(value) = ga.attr("individual_size") {
            self.ga.individual_size = parse_attr("individual_size", value)?;
            self.ga.mutation_rate = GaConfig::mutation_rate_for(self.ga.individual_size);
        }
        if let Some(value) = ga.attr("mutation_rate") {
            self.ga.mutation_rate = parse_attr("mutation_rate", value)?;
        }
        if let Some(value) = ga.attr("crossover") {
            self.ga.crossover = match value {
                "one_point" => CrossoverOp::OnePoint,
                "uniform" => CrossoverOp::Uniform,
                other => {
                    return Err(GestError::Config(format!(
                        "unknown crossover {other:?} (expected one_point or uniform)"
                    )))
                }
            };
        }
        if let Some(value) = ga.attr("elitism") {
            self.ga.elitism = parse_attr("elitism", value)?;
        }
        if let Some(value) = ga.attr("tournament_size") {
            self.ga.selection = SelectionOp::Tournament {
                size: parse_attr("tournament_size", value)?,
            };
        }
        if let Some(value) = ga.attr("generations") {
            self.generations = parse_attr("generations", value)?;
        }
        if let Some(value) = ga.attr("seed") {
            self.seed = parse_attr("seed", value)?;
        }
        Ok(self)
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// [`GestError::Config`] for unknown machine names,
    /// [`GestError::Ga`] for invalid GA parameters.
    pub fn build(self) -> Result<GestConfig, GestError> {
        let machine = match self.machine_override {
            Some(machine) => machine,
            None => MachineConfig::all_presets()
                .into_iter()
                .find(|m| m.name == self.machine_name)
                .ok_or_else(|| {
                    GestError::Config(format!(
                        "unknown machine {:?} (presets: cortex-a15, cortex-a7, xgene2, athlon-x4)",
                        self.machine_name
                    ))
                })?,
        };
        self.ga.validate()?;
        if self.generations == 0 {
            return Err(GestError::Config("generations must be at least 1".into()));
        }
        if self.checkpoint_every == Some(0) {
            return Err(GestError::Config(
                "checkpoint_every must be at least 1 (omit it to disable checkpointing)".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.whole_instruction_mutation_prob) {
            return Err(GestError::Config(
                "whole_instruction_mutation_prob outside [0, 1]".into(),
            ));
        }
        Ok(GestConfig {
            machine,
            measurement_name: self.measurement_name,
            fitness_name: self.fitness_name,
            ga: self.ga,
            generations: self.generations,
            seed: self.seed,
            run_config: self.run_config,
            pool: Arc::new(self.pool.unwrap_or_else(full_pool)),
            template: self.template.unwrap_or_else(Template::default_stress),
            output_dir: self.output_dir,
            seed_population: self.seed_population,
            threads: self.threads,
            lane_width: self.lane_width,
            checkpoint_every: self.checkpoint_every,
            fault_policy: self.fault_policy,
            whole_instruction_mutation_prob: self.whole_instruction_mutation_prob,
            fitness_override: self.fitness_override,
            telemetry: self.telemetry,
            eval_cache: self.eval_cache,
            eval_cache_bytes: self.eval_cache_bytes,
            surrogate: self.surrogate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let config = GestConfig::builder("cortex-a7").build().unwrap();
        assert_eq!(config.machine.name, "cortex-a7");
        assert_eq!(config.measurement_name, "power");
        assert_eq!(config.fitness_name, "default");
        assert_eq!(config.ga.population_size, 50);
        assert!(config.pool.defs().len() > 10);
    }

    #[test]
    fn unknown_machine_rejected() {
        assert!(matches!(
            GestConfig::builder("pentium4").build(),
            Err(GestError::Config(_))
        ));
    }

    #[test]
    fn individual_size_adjusts_mutation_rate() {
        let config = GestConfig::builder("cortex-a15")
            .individual_size(20)
            .build()
            .unwrap();
        assert!((config.ga.mutation_rate - 0.05).abs() < 1e-12);
    }

    #[test]
    fn xml_full_schema() {
        let config = GestConfig::from_xml_str(
            r#"<gest>
                 <target machine="athlon-x4" measurement="voltage_noise" fitness="default"/>
                 <ga population_size="30" individual_size="31" mutation_rate="0.04"
                     crossover="uniform" elitism="false" tournament_size="3"
                     generations="50" seed="99"/>
                 <run max_iterations="100" max_cycles="5000"/>
                 <output dir="results/didt"/>
                 <instructions>
                   <operand id="v" values="v0 v1" type="register"/>
                   <instruction name="FMUL" num_of_operands="3"
                       operand1="v" operand2="v" operand3="v" type="float"/>
                 </instructions>
                 <template>
.mem checkerboard
.init
MOVI x10, #0
.loop
#loop_code
                 </template>
               </gest>"#,
        )
        .unwrap();
        assert_eq!(config.machine.name, "athlon-x4");
        assert_eq!(config.measurement_name, "voltage_noise");
        assert_eq!(config.ga.population_size, 30);
        assert_eq!(config.ga.individual_size, 31);
        assert!((config.ga.mutation_rate - 0.04).abs() < 1e-12);
        assert_eq!(config.ga.crossover, CrossoverOp::Uniform);
        assert!(!config.ga.elitism);
        assert_eq!(config.ga.selection, SelectionOp::Tournament { size: 3 });
        assert_eq!(config.generations, 50);
        assert_eq!(config.seed, 99);
        assert_eq!(config.run_config.max_iterations, 100);
        assert_eq!(
            config.output_dir.as_deref(),
            Some(std::path::Path::new("results/didt"))
        );
        assert_eq!(config.pool.defs().len(), 1);
        assert_eq!(config.template.init().len(), 1);
    }

    #[test]
    fn xml_minimal_schema_uses_defaults() {
        let config = GestConfig::from_xml_str(
            r#"<gest><target machine="xgene2" measurement="temperature"/></gest>"#,
        )
        .unwrap();
        assert_eq!(config.measurement_name, "temperature");
        assert_eq!(config.ga.population_size, 50);
    }

    #[test]
    fn xml_bad_root_rejected() {
        assert!(matches!(
            GestConfig::from_xml_str("<config/>"),
            Err(GestError::Config(_))
        ));
    }

    #[test]
    fn xml_missing_target_rejected() {
        assert!(matches!(
            GestConfig::from_xml_str("<gest/>"),
            Err(GestError::Config(_))
        ));
    }

    #[test]
    fn xml_bad_crossover_rejected() {
        let err = GestConfig::from_xml_str(
            r#"<gest>
                 <target machine="xgene2"/>
                 <ga crossover="two_point"/>
               </gest>"#,
        )
        .unwrap_err();
        assert!(matches!(err, GestError::Config(_)));
    }

    #[test]
    fn to_xml_round_trips_core_fields() {
        let config = GestConfig::builder("cortex-a15")
            .measurement("ipc")
            .population_size(12)
            .generations(7)
            .build()
            .unwrap();
        let xml = config.to_xml().to_string();
        let reparsed = GestConfig::from_xml_str(&xml).unwrap();
        assert_eq!(reparsed.machine.name, "cortex-a15");
        assert_eq!(reparsed.measurement_name, "ipc");
        assert_eq!(reparsed.ga.population_size, 12);
        assert_eq!(reparsed.generations, 7);
        assert_eq!(reparsed.pool.defs().len(), config.pool.defs().len());
        // The record-keeping config must reproduce the template exactly:
        // re-running it from disk must not fall back to a default template.
        assert_eq!(reparsed.template, config.template);
    }

    #[test]
    fn to_xml_preserves_output_and_seed_paths() {
        let mut config = GestConfig::builder("xgene2").build().unwrap();
        config.output_dir = Some("runs/x".into());
        config.seed_population = Some("runs/x/population_0009.bin".into());
        let reparsed = GestConfig::from_xml_str(&config.to_xml().to_string()).unwrap();
        assert_eq!(reparsed.output_dir, config.output_dir);
        assert_eq!(reparsed.seed_population, config.seed_population);
    }

    #[test]
    fn checkpoint_and_fault_policy_round_trip_through_xml() {
        let config = GestConfig::builder("cortex-a15")
            .checkpoint_every(5)
            .fault_policy(FaultPolicy {
                max_retries: 3,
                backoff_base_ms: 25,
                deadline_ms: Some(4000),
                watchdog_ms: Some(9000),
                quarantine: false,
            })
            .build()
            .unwrap();
        let reparsed = GestConfig::from_xml_str(&config.to_xml().to_string()).unwrap();
        assert_eq!(reparsed.checkpoint_every, Some(5));
        assert_eq!(reparsed.fault_policy, config.fault_policy);

        // Configs that never mention the new elements get the defaults.
        let plain = GestConfig::from_xml_str(
            r#"<gest><target machine="cortex-a7" measurement="power"/></gest>"#,
        )
        .unwrap();
        assert_eq!(plain.checkpoint_every, None);
        assert_eq!(plain.fault_policy, FaultPolicy::default());
    }

    #[test]
    fn zero_checkpoint_interval_rejected() {
        let err = GestConfig::from_xml_str(
            r#"<gest>
                 <target machine="cortex-a7"/>
                 <run checkpoint_every="0"/>
               </gest>"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("checkpoint_every"), "{err}");
    }

    #[test]
    fn zero_generations_rejected() {
        assert!(GestConfig::builder("cortex-a15")
            .generations(0)
            .build()
            .is_err());
    }
}
