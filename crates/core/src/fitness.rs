//! The fitness plug-in interface (the paper's `DefaultFitness.py`).
//!
//! A fitness function ranks individuals from their measurement values and,
//! for multi-objective functions, properties of the instruction sequence
//! itself (the paper's temperature + simplicity search, Equation 1).

use gest_isa::{Gene, InstructionPool};
use std::fmt::Debug;
use std::sync::Arc;

use crate::error::GestError;

/// Everything a fitness function may consult for one individual.
#[derive(Debug, Clone, Copy)]
pub struct FitnessContext<'a> {
    /// Measurement values, in the measurement's metric order.
    pub measurements: &'a [f64],
    /// The individual's genes.
    pub genes: &'a [Gene],
    /// The pool the genes were drawn from (for unique-instruction counts).
    pub pool: &'a InstructionPool,
}

/// Assigns a fitness value to a measured individual.
pub trait Fitness: Send + Sync + Debug {
    /// Identifier used in configuration files.
    fn name(&self) -> &'static str;

    /// Computes the fitness (higher is fitter).
    fn fitness(&self, ctx: &FitnessContext<'_>) -> f64;
}

/// The paper's default: the first measurement *is* the fitness.
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultFitness;

impl Fitness for DefaultFitness {
    fn name(&self) -> &'static str {
        "default"
    }

    fn fitness(&self, ctx: &FitnessContext<'_>) -> f64 {
        ctx.measurements.first().copied().unwrap_or(0.0)
    }
}

/// Paper Equation 1: reward high temperature *and* instruction-stream
/// simplicity (few unique instructions), weighted equally:
///
/// ```text
/// F = (M_T − I_T) / (MAX_T − I_T) · 0.5 + (T_I − U_I) / T_I · 0.5
/// ```
///
/// where `M_T` is the measured temperature (first measurement), `I_T` the
/// idle temperature, `MAX_T` the maximum temperature (TJMAX or a previous
/// run's best), `T_I` the total and `U_I` the unique instruction count.
///
/// # Examples
///
/// ```
/// use gest_core::TempSimplicityFitness;
/// let fitness = TempSimplicityFitness::new(30.0, 105.0);
/// // Paper's worked example: 50 instructions, 25 unique → simplicity 0.5;
/// // 15 unique → 0.7.
/// assert!((fitness.simplicity_score(50, 25) - 0.5).abs() < 1e-12);
/// assert!((fitness.simplicity_score(50, 15) - 0.7).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TempSimplicityFitness {
    /// Idle temperature `I_T` (°C).
    pub idle_c: f64,
    /// Maximum temperature `MAX_T` (°C).
    pub max_c: f64,
}

impl TempSimplicityFitness {
    /// Creates the fitness with the given idle and maximum temperatures.
    pub fn new(idle_c: f64, max_c: f64) -> TempSimplicityFitness {
        TempSimplicityFitness { idle_c, max_c }
    }

    /// The temperature half of Equation 1, clamped to `[0, 1]`
    /// (unweighted). A degenerate range (`max_c <= idle_c`) scores 0 so the
    /// fitness never turns NaN and poisons selection.
    pub fn temperature_score(&self, measured_c: f64) -> f64 {
        let range = self.max_c - self.idle_c;
        if range <= 0.0 {
            return 0.0;
        }
        ((measured_c - self.idle_c) / range).clamp(0.0, 1.0)
    }

    /// The simplicity half of Equation 1 (unweighted): `(T_I − U_I) / T_I`.
    pub fn simplicity_score(&self, total: usize, unique: usize) -> f64 {
        if total == 0 {
            return 0.0;
        }
        (total - unique.min(total)) as f64 / total as f64
    }
}

impl Fitness for TempSimplicityFitness {
    fn name(&self) -> &'static str {
        "temp_simplicity"
    }

    fn fitness(&self, ctx: &FitnessContext<'_>) -> f64 {
        let measured = ctx.measurements.first().copied().unwrap_or(self.idle_c);
        let unique = InstructionPool::unique_defs(ctx.genes);
        self.temperature_score(measured) * 0.5
            + self.simplicity_score(ctx.genes.len(), unique) * 0.5
    }
}

/// An example of a different multi-objective trade-off: maximize the first
/// measurement while *penalizing* the second (e.g. maximize voltage droop
/// while keeping average power low, a combination the paper calls out as
/// a desirable custom fitness in §III.C).
#[derive(Debug, Clone, Copy)]
pub struct IpcPowerFitness {
    /// Weight on the second measurement's penalty term.
    pub penalty_weight: f64,
    /// Normalization for the second measurement.
    pub penalty_scale: f64,
}

impl Default for IpcPowerFitness {
    fn default() -> Self {
        IpcPowerFitness {
            penalty_weight: 0.25,
            penalty_scale: 1.0,
        }
    }
}

impl Fitness for IpcPowerFitness {
    fn name(&self) -> &'static str {
        "primary_minus_secondary"
    }

    fn fitness(&self, ctx: &FitnessContext<'_>) -> f64 {
        let primary = ctx.measurements.first().copied().unwrap_or(0.0);
        let secondary = ctx.measurements.get(1).copied().unwrap_or(0.0);
        primary - self.penalty_weight * secondary / self.penalty_scale
    }
}

/// Instantiates a shipped fitness function by its configuration name.
///
/// Known names: `default`, `temp_simplicity` (requires idle/max
/// temperatures), `primary_minus_secondary`.
///
/// # Errors
///
/// [`GestError::Config`] for unknown names.
#[deprecated(
    since = "0.2.0",
    note = "use Registry::default().build_fitness(name, FitnessParams { idle_c, max_c })"
)]
pub fn fitness_by_name(name: &str, idle_c: f64, max_c: f64) -> Result<Arc<dyn Fitness>, GestError> {
    crate::Registry::default().build_fitness(name, crate::FitnessParams { idle_c, max_c })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pools::full_pool;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn context_with<'a>(
        pool: &'a InstructionPool,
        genes: &'a [Gene],
        measurements: &'a [f64],
    ) -> FitnessContext<'a> {
        FitnessContext {
            measurements,
            genes,
            pool,
        }
    }

    #[test]
    fn default_fitness_is_first_measurement() {
        let pool = full_pool();
        let ctx = context_with(&pool, &[], &[3.5, 9.9]);
        assert_eq!(DefaultFitness.fitness(&ctx), 3.5);
        let empty = context_with(&pool, &[], &[]);
        assert_eq!(DefaultFitness.fitness(&empty), 0.0);
    }

    #[test]
    fn equation1_bounds() {
        let pool = full_pool();
        let mut rng = StdRng::seed_from_u64(1);
        let genes: Vec<Gene> = (0..50).map(|_| pool.random_gene(&mut rng)).collect();
        let fitness = TempSimplicityFitness::new(30.0, 105.0);
        for temp in [0.0, 30.0, 70.0, 105.0, 400.0] {
            let measurements = [temp];
            let ctx = context_with(&pool, &genes, &measurements);
            let value = fitness.fitness(&ctx);
            assert!(
                (0.0..=1.0).contains(&value),
                "temp {temp} → fitness {value}"
            );
        }
    }

    #[test]
    fn equation1_rewards_fewer_unique_instructions() {
        let pool = full_pool();
        let mut rng = StdRng::seed_from_u64(2);
        // Diverse individual: 30 random genes; simple individual: one gene
        // repeated 30 times.
        let diverse: Vec<Gene> = (0..30).map(|_| pool.random_gene(&mut rng)).collect();
        let simple: Vec<Gene> = vec![pool.random_gene(&mut rng); 30];
        let fitness = TempSimplicityFitness::new(30.0, 105.0);
        let same_temp = [70.0];
        let f_diverse = fitness.fitness(&context_with(&pool, &diverse, &same_temp));
        let f_simple = fitness.fitness(&context_with(&pool, &simple, &same_temp));
        assert!(f_simple > f_diverse, "{f_simple} vs {f_diverse}");
    }

    #[test]
    fn equation1_rewards_temperature_equally() {
        let pool = full_pool();
        let mut rng = StdRng::seed_from_u64(3);
        let genes: Vec<Gene> = (0..30).map(|_| pool.random_gene(&mut rng)).collect();
        let fitness = TempSimplicityFitness::new(30.0, 105.0);
        let cold = fitness.fitness(&context_with(&pool, &genes, &[40.0]));
        let hot = fitness.fitness(&context_with(&pool, &genes, &[100.0]));
        assert!(hot > cold);
        // Equal weights: the temperature half alone can move fitness by at
        // most 0.5.
        assert!(hot - cold <= 0.5 + 1e-12);
    }

    #[test]
    fn penalty_fitness_trades_off() {
        let pool = full_pool();
        let fitness = IpcPowerFitness {
            penalty_weight: 0.5,
            penalty_scale: 1.0,
        };
        let high_primary = fitness.fitness(&context_with(&pool, &[], &[4.0, 2.0]));
        let low_penalty = fitness.fitness(&context_with(&pool, &[], &[3.5, 0.0]));
        assert!((high_primary - 3.0).abs() < 1e-12);
        assert!(low_penalty > high_primary);
    }

    #[test]
    #[allow(deprecated)] // deliberately exercises the legacy shim
    fn registry_resolves_names() {
        assert_eq!(
            fitness_by_name("default", 0.0, 1.0).unwrap().name(),
            "default"
        );
        assert_eq!(
            fitness_by_name("temp_simplicity", 30.0, 105.0)
                .unwrap()
                .name(),
            "temp_simplicity"
        );
        assert!(fitness_by_name("bogus", 0.0, 1.0).is_err());
    }

    #[test]
    fn degenerate_temperature_range_scores_zero_not_nan() {
        let fitness = TempSimplicityFitness::new(50.0, 50.0);
        assert_eq!(fitness.temperature_score(60.0), 0.0);
        let inverted = TempSimplicityFitness::new(80.0, 50.0);
        assert_eq!(inverted.temperature_score(60.0), 0.0);
    }

    #[test]
    fn simplicity_score_edge_cases() {
        let fitness = TempSimplicityFitness::new(0.0, 1.0);
        assert_eq!(fitness.simplicity_score(0, 0), 0.0);
        assert_eq!(fitness.simplicity_score(10, 10), 0.0);
        assert!((fitness.simplicity_score(10, 1) - 0.9).abs() < 1e-12);
    }
}
