//! The measurement fault model: what happens when evaluating one
//! candidate fails.
//!
//! The paper's measurement step is the fragile part of a real deployment —
//! an ssh hop to the target, an external instrument, a multi-hour
//! campaign. A single flaky reading at generation 190/200 must not kill
//! the whole search. [`FaultPolicy`] bounds how hard the runner tries
//! (retries with deterministic backoff, an optional per-candidate
//! deadline) and what it does when a candidate keeps failing: quarantine
//! it (assign the worst possible fitness and move on) or fail the run.

use std::time::Duration;

/// Fitness assigned to quarantined candidates. `-inf` guarantees they are
/// never selected as the generation's best and lose every tournament
/// against a successfully measured individual, while keeping selection
/// fully deterministic.
pub const QUARANTINE_FITNESS: f64 = f64::NEG_INFINITY;

/// How the runner responds to measurement failures (errors, panics, or
/// deadline overruns) for a single candidate.
///
/// All knobs are deterministic: retry counts and backoff delays depend
/// only on the attempt number, never on wall-clock or randomness, so a
/// resumed run replays failure handling identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Extra attempts after the first failed one (0 = single attempt).
    pub max_retries: u32,
    /// Base delay before retry `n` — the runner sleeps
    /// `backoff_base_ms << (n - 1)` milliseconds (deterministic
    /// exponential backoff, capped at [`FaultPolicy::MAX_BACKOFF_MS`]).
    pub backoff_base_ms: u64,
    /// Soft per-candidate deadline: an attempt whose wall-clock exceeds
    /// this budget counts as failed even if it returned a value. The
    /// measurement is not preempted (the substrate has no way to kill an
    /// in-flight simulator step), so this bounds *accepted* latency, not
    /// worst-case latency.
    pub deadline_ms: Option<u64>,
    /// Hard per-attempt watchdog: the measurement runs on a sacrificial
    /// thread and an attempt still running after this budget is abandoned
    /// (it becomes a measurement failure immediately, while the stuck
    /// thread is left to finish or leak in the background). This is the
    /// local-evaluation analogue of the distributed heartbeat timeout —
    /// without it a wedged measurement plug-in stalls its evaluation slot
    /// forever. `None` (the default) runs attempts inline with no bound.
    pub watchdog_ms: Option<u64>,
    /// When a candidate exhausts its retries: `true` quarantines it
    /// (fitness [`QUARANTINE_FITNESS`], `NaN` measurements, the generation
    /// continues), `false` fails the run with
    /// [`crate::GestError::Measurement`].
    pub quarantine: bool,
}

impl FaultPolicy {
    /// Upper bound on a single backoff sleep, whatever the attempt count.
    pub const MAX_BACKOFF_MS: u64 = 10_000;

    /// The pre-fault-layer behavior: one attempt, first failure kills the
    /// run. Useful in tests that assert on the error itself.
    pub fn fail_fast() -> FaultPolicy {
        FaultPolicy {
            max_retries: 0,
            backoff_base_ms: 0,
            deadline_ms: None,
            watchdog_ms: None,
            quarantine: false,
        }
    }

    /// The delay before retry attempt `attempt` (1-based). Returns zero
    /// when backoff is disabled.
    pub fn backoff(&self, attempt: u32) -> Duration {
        if self.backoff_base_ms == 0 || attempt == 0 {
            return Duration::ZERO;
        }
        let shift = (attempt - 1).min(20);
        let ms = self
            .backoff_base_ms
            .saturating_mul(1u64 << shift)
            .min(Self::MAX_BACKOFF_MS);
        Duration::from_millis(ms)
    }

    /// Whether an attempt that took `elapsed_ms` blew the deadline.
    pub fn deadline_exceeded(&self, elapsed_ms: u128) -> bool {
        self.deadline_ms
            .is_some_and(|budget| elapsed_ms > u128::from(budget))
    }
}

impl Default for FaultPolicy {
    /// One retry, no backoff delay, no deadline, quarantine on — a crash
    /// in one measurement degrades that candidate instead of the run.
    fn default() -> FaultPolicy {
        FaultPolicy {
            max_retries: 1,
            backoff_base_ms: 0,
            deadline_ms: None,
            watchdog_ms: None,
            quarantine: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let policy = FaultPolicy {
            backoff_base_ms: 100,
            ..FaultPolicy::default()
        };
        assert_eq!(policy.backoff(1), Duration::from_millis(100));
        assert_eq!(policy.backoff(2), Duration::from_millis(200));
        assert_eq!(policy.backoff(3), Duration::from_millis(400));
        assert_eq!(
            policy.backoff(40),
            Duration::from_millis(FaultPolicy::MAX_BACKOFF_MS),
            "large attempt counts saturate instead of overflowing"
        );
        let no_backoff = FaultPolicy::default();
        assert_eq!(no_backoff.backoff(5), Duration::ZERO);
    }

    #[test]
    fn deadline_checks() {
        let policy = FaultPolicy {
            deadline_ms: Some(50),
            ..FaultPolicy::default()
        };
        assert!(!policy.deadline_exceeded(50));
        assert!(policy.deadline_exceeded(51));
        assert!(!FaultPolicy::default().deadline_exceeded(u128::MAX));
    }

    #[test]
    fn fail_fast_matches_legacy_behavior() {
        let policy = FaultPolicy::fail_fast();
        assert_eq!(policy.max_retries, 0);
        assert!(!policy.quarantine);
    }
}
