//! Search-health diagnostics: population diversity, stall detection, and
//! fault-rate trend.
//!
//! The paper's workflow watches fitness convergence to decide when a
//! stress-test is "done" (§IV); these metrics answer the adjacent
//! operational questions — *is the population collapsing?*, *has the
//! search stalled?*, *are measurements failing?* — per generation,
//! without feeding anything back into the GA. Everything here is computed
//! from read-only views (the evaluated population and the convergence
//! history), so enabling health diagnostics never changes the evolved
//! result.

use gest_ga::{History, Population};
use gest_isa::codec::Encoder;
use gest_isa::Gene;

/// Plateau window used by the runner's per-generation health probe: the
/// search counts as plateaued when the best fitness has not improved by
/// more than [`HEALTH_EPSILON`] over this many generations.
pub const HEALTH_WINDOW: usize = 5;

/// Fitness-improvement threshold below which a generation does not reset
/// the plateau window.
pub const HEALTH_EPSILON: f64 = 1e-9;

/// One generation's health snapshot, emitted as a `health` trace point
/// and mirrored into `health.*` gauges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthReport {
    /// Generation the snapshot describes.
    pub generation: u32,
    /// Mean pairwise normalized genome distance in `[0, 1]`: `0` means
    /// every individual encodes byte-identically (population collapse),
    /// `1` means no two genomes share a byte.
    pub diversity: f64,
    /// Generations since the best-ever fitness last improved (`0` when
    /// this generation set a new best).
    pub stall_generations: u32,
    /// Whether the best fitness has been flat for [`HEALTH_WINDOW`]
    /// generations (per [`History::plateaued`]).
    pub plateaued: bool,
}

/// Canonical byte encoding of one individual's genes — the same codec
/// rendering population files and [`crate::genes_hash`] use, so distance
/// is measured over exactly the bytes that determine artifact identity.
pub fn genome_bytes(genes: &[Gene]) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.varint(genes.len() as u64);
    for gene in genes {
        enc.varint(gene.def_index as u64);
        enc.instructions(&gene.instrs);
    }
    enc.into_bytes()
}

/// Normalized distance between two canonical genome encodings: byte
/// Hamming distance over the common prefix plus the length difference,
/// divided by the longer length. `0.0` for identical encodings, `1.0`
/// for fully disjoint ones; `0.0` when both are empty.
pub fn genome_distance(a: &[u8], b: &[u8]) -> f64 {
    let longest = a.len().max(b.len());
    if longest == 0 {
        return 0.0;
    }
    let differing = a
        .iter()
        .zip(b.iter())
        .filter(|(byte_a, byte_b)| byte_a != byte_b)
        .count()
        + a.len().abs_diff(b.len());
    differing as f64 / longest as f64
}

/// Mean pairwise [`genome_distance`] across the population. `0.0` for
/// fewer than two individuals. Populations are small (tens), so the
/// O(P²) pair loop over pre-encoded genomes is cheap relative to one
/// candidate measurement.
pub fn population_diversity(population: &Population<Gene>) -> f64 {
    let encoded: Vec<Vec<u8>> = population
        .individuals
        .iter()
        .map(|individual| genome_bytes(&individual.genes))
        .collect();
    if encoded.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut pairs = 0u64;
    for (i, a) in encoded.iter().enumerate() {
        for b in &encoded[i + 1..] {
            total += genome_distance(a, b);
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// Generations since the running best fitness last improved: `0` when
/// the latest recorded generation set a new best, and `0` for an empty
/// history.
pub fn stall_generations(history: &History) -> u32 {
    let summaries = history.summaries();
    let mut best = f64::NEG_INFINITY;
    let mut last_improvement = 0;
    for (index, summary) in summaries.iter().enumerate() {
        if summary.best_fitness > best {
            best = summary.best_fitness;
            last_improvement = index;
        }
    }
    summaries.len().saturating_sub(last_improvement + 1) as u32
}

/// Computes the full health snapshot for the generation just evaluated.
pub fn report(generation: u32, population: &Population<Gene>, history: &History) -> HealthReport {
    HealthReport {
        generation,
        diversity: population_diversity(population),
        stall_generations: stall_generations(history),
        plateaued: history.plateaued(HEALTH_WINDOW, HEALTH_EPSILON),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gest_ga::Evaluated;
    use gest_isa::{Instruction, Opcode, Operand, Reg};

    fn gene(def_index: usize, rd: u8) -> Gene {
        let reg = |i: u8| Operand::Reg(Reg::new(i).unwrap());
        Gene {
            def_index,
            instrs: vec![Instruction::new(Opcode::Add, vec![reg(rd), reg(1), reg(2)]).unwrap()],
        }
    }

    fn individual(id: u64, fitness: f64, genes: Vec<Gene>) -> Evaluated<Gene> {
        Evaluated {
            id,
            parents: (None, None),
            genes,
            fitness,
            measurements: vec![fitness],
        }
    }

    #[test]
    fn distance_is_zero_for_identical_and_one_for_disjoint() {
        assert_eq!(genome_distance(&[], &[]), 0.0);
        assert_eq!(genome_distance(&[1, 2, 3], &[1, 2, 3]), 0.0);
        assert_eq!(genome_distance(&[1, 2], &[3, 4]), 1.0);
        // Common prefix, one extra byte: 1 differing position out of 3.
        assert!((genome_distance(&[1, 2, 3], &[1, 2]) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn collapsed_population_has_zero_diversity() {
        let genes = vec![gene(0, 1)];
        let population = Population {
            generation: 0,
            individuals: vec![
                individual(0, 1.0, genes.clone()),
                individual(1, 2.0, genes.clone()),
                individual(2, 3.0, genes),
            ],
        };
        assert_eq!(population_diversity(&population), 0.0);
    }

    #[test]
    fn varied_population_has_positive_diversity() {
        let population = Population {
            generation: 0,
            individuals: vec![
                individual(0, 1.0, vec![gene(0, 1)]),
                individual(1, 2.0, vec![gene(1, 2)]),
            ],
        };
        let diversity = population_diversity(&population);
        assert!(diversity > 0.0 && diversity <= 1.0, "got {diversity}");
        // Fewer than two individuals: trivially zero.
        let single = Population {
            generation: 0,
            individuals: vec![individual(0, 1.0, vec![gene(0, 1)])],
        };
        assert_eq!(population_diversity(&single), 0.0);
    }

    #[test]
    fn stall_counts_generations_since_last_improvement() {
        let mut history = History::new();
        assert_eq!(stall_generations(&history), 0);
        for (generation, fitness) in [(0, 1.0), (1, 2.0), (2, 2.0), (3, 1.5)] {
            history.record(&Population {
                generation,
                individuals: vec![individual(u64::from(generation), fitness, vec![gene(0, 1)])],
            });
        }
        // Last improvement at generation 1; generations 2 and 3 stalled.
        assert_eq!(stall_generations(&history), 2);
    }
}
