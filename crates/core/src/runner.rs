//! The run driver: coordinates the GA engine, measurement, fitness, and
//! outputs across generations (the paper's Figure 2 loop).

use crate::config::GestConfig;
use crate::error::GestError;
use crate::fitness::{fitness_by_name, Fitness, FitnessContext};
use crate::genetics::PoolGenetics;
use crate::measurement::{measurement_by_name, Measurement};
use crate::output::{OutputWriter, SavedPopulation};
use gest_ga::{Candidate, Evaluated, GaEngine, History, Population};
use gest_isa::{Gene, Program};
use gest_telemetry::{Buckets, SpanGuard, Telemetry};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Latency buckets for `eval.latency_us`: 100µs up to 100s, one decade
/// per bucket.
fn latency_buckets() -> Buckets {
    Buckets::exponential(100.0, 10.0, 7)
}

/// Wide-range buckets for `sim.*` value histograms; summary statistics
/// (min/mean/max) stay exact regardless of bucket resolution.
fn sim_buckets() -> Buckets {
    Buckets::exponential(1e-6, 10.0, 16)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_string()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "evaluation worker panicked".to_string()
    }
}

/// Final outcome of a GeST search.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// The fittest individual found across all generations.
    pub best: Evaluated<Gene>,
    /// The program the best individual materializes to.
    pub best_program: Program,
    /// Per-generation convergence history.
    pub history: History,
    /// Number of generations evaluated (including the seed generation).
    pub generations: u32,
    /// Metric names of the measurement used.
    pub metric_names: Vec<&'static str>,
}

impl RunSummary {
    /// Instruction-class breakdown of the best individual, in
    /// [`gest_isa::InstrClass::ALL`] order (the paper's Table III/IV rows).
    pub fn best_breakdown(&self) -> [usize; 6] {
        gest_isa::InstructionPool::class_breakdown(&self.best.genes)
    }

    /// Unique instruction definitions used by the best individual (the
    /// paper's simplicity metric).
    pub fn best_unique_defs(&self) -> usize {
        gest_isa::InstructionPool::unique_defs(&self.best.genes)
    }
}

/// A configured GeST search.
///
/// Use [`GestRun::run`] for the whole search, or [`GestRun::step`] to
/// drive it generation by generation (e.g. for live plotting).
#[derive(Debug)]
pub struct GestRun {
    config: GestConfig,
    engine: GaEngine<PoolGenetics>,
    measurement: Arc<dyn Measurement>,
    fitness: Arc<dyn Fitness>,
    history: History,
    writer: Option<OutputWriter>,
    current: Option<Population<Gene>>,
    best: Option<Evaluated<Gene>>,
    generation: u32,
    telemetry: Telemetry,
    /// Open for the whole search; closed by [`GestRun::finish`].
    run_span: Option<SpanGuard>,
}

impl GestRun {
    /// Builds the run: resolves the measurement and fitness plug-ins by
    /// name, prepares the GA engine, and opens the output directory when
    /// configured.
    ///
    /// # Errors
    ///
    /// Configuration errors for unknown plug-in names; I/O errors opening
    /// the output directory.
    pub fn new(config: GestConfig) -> Result<GestRun, GestError> {
        let measurement = measurement_by_name(
            &config.measurement_name,
            config.machine.clone(),
            config.run_config,
        )?;
        GestRun::with_measurement(config, measurement)
    }

    /// Like [`GestRun::new`] but with an explicit measurement instance —
    /// the programmatic equivalent of dropping a custom measurement class
    /// next to the framework (paper §III.C), e.g. a
    /// [`crate::NoisyMeasurement`] wrapper.
    ///
    /// # Errors
    ///
    /// Same as [`GestRun::new`].
    pub fn with_measurement(
        config: GestConfig,
        measurement: Arc<dyn Measurement>,
    ) -> Result<GestRun, GestError> {
        // Equation-1 parameters: idle temperature = steady state under
        // static power alone; max = TJMAX (overridable via
        // `fitness_override`).
        let idle_c = config
            .machine
            .thermal
            .steady_state_c(config.machine.energy.static_w);
        let fitness = match &config.fitness_override {
            Some(custom) => Arc::clone(custom),
            None => fitness_by_name(&config.fitness_name, idle_c, config.machine.thermal.tjmax_c)?,
        };
        let genetics = PoolGenetics::new(Arc::clone(&config.pool))
            .with_whole_instruction_prob(config.whole_instruction_mutation_prob);
        let engine = GaEngine::new(config.ga, genetics, config.seed);
        let writer = match &config.output_dir {
            Some(dir) => Some(OutputWriter::new(dir, &config, &config.template)?),
            None => None,
        };
        let telemetry = config.telemetry.clone();
        let run_span = Some(telemetry.span_with(
            "run",
            &[
                ("machine", config.machine.name.as_str().into()),
                ("measurement", measurement.name().into()),
                ("population_size", config.ga.population_size.into()),
                ("generations", u64::from(config.generations).into()),
                ("seed", config.seed.into()),
            ],
        ));
        Ok(GestRun {
            config,
            engine,
            measurement,
            fitness,
            history: History::new(),
            writer,
            current: None,
            best: None,
            generation: 0,
            telemetry,
            run_span,
        })
    }

    /// The convergence history so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The most recently evaluated population.
    pub fn population(&self) -> Option<&Population<Gene>> {
        self.current.as_ref()
    }

    /// Materializes an individual's genes into a runnable program.
    pub fn materialize(&self, name: &str, genes: &[Gene]) -> Program {
        let body = gest_isa::InstructionPool::flatten(genes);
        self.config.template.materialize(name, body)
    }

    /// Advances one generation: seeds on the first call, breeds afterwards;
    /// evaluates candidates in parallel; records history and outputs.
    ///
    /// # Errors
    ///
    /// Measurement/simulation errors; I/O errors when saving.
    pub fn step(&mut self) -> Result<&Population<Gene>, GestError> {
        let run_id = self.run_span.as_ref().and_then(SpanGuard::id);
        let generation_span = self.telemetry.span_under(
            run_id,
            "generation",
            &[("generation", u64::from(self.generation).into())],
        );
        let candidates = {
            let _breed_span = self.telemetry.span("breed");
            match &self.current {
                None => match &self.config.seed_population {
                    Some(path) => {
                        let saved = SavedPopulation::load(path)?;
                        let seeds = saved.seed_genes(&self.config.pool);
                        self.engine.seed_from(seeds)
                    }
                    None => self.engine.seed(),
                },
                Some(population) => self.engine.next_generation(population),
            }
        };
        let population = self.evaluate(self.generation, candidates, generation_span.id())?;
        self.history.record(&population);
        if let Some(best) = population.best() {
            let replace = self.best.as_ref().is_none_or(|b| best.fitness > b.fitness);
            if replace {
                self.best = Some(best.clone());
            }
        }
        if self.telemetry.is_enabled() {
            if let Some(best) = population.best() {
                self.telemetry.point(
                    "generation",
                    &[
                        ("generation", u64::from(self.generation).into()),
                        ("best_fitness", best.fitness.into()),
                        ("mean_fitness", population.mean_fitness().into()),
                        (
                            "best_ever",
                            self.best
                                .as_ref()
                                .map_or(best.fitness, |b| b.fitness)
                                .into(),
                        ),
                    ],
                );
            }
        }
        if let Some(writer) = &self.writer {
            let _save_span = self.telemetry.span("save");
            writer.save_generation(&population, &self.config.pool, &self.config.template)?;
        }
        self.generation += 1;
        self.current = Some(population);
        drop(generation_span);
        Ok(self.current.as_ref().expect("just assigned"))
    }

    /// Runs all configured generations and summarizes.
    ///
    /// # Errors
    ///
    /// Propagates the first error from any generation.
    pub fn run(mut self) -> Result<RunSummary, GestError> {
        for _ in 0..self.config.generations {
            self.step()?;
        }
        self.finish();
        let best = self.best.expect("at least one generation ran");
        let best_program = {
            let body = gest_isa::InstructionPool::flatten(&best.genes);
            self.config.template.materialize("best", body)
        };
        Ok(RunSummary {
            best,
            best_program,
            history: self.history,
            generations: self.generation,
            metric_names: self.measurement.metrics().to_vec(),
        })
    }

    /// Closes the run-level span, flushes GA operator counters and
    /// run-level gauges, and finishes the telemetry pipeline (drains
    /// aggregated metrics to the sink). Idempotent; [`GestRun::run`] calls
    /// it automatically, manual [`GestRun::step`] drivers should call it
    /// once the search is over.
    pub fn finish(&mut self) {
        let Some(run_span) = self.run_span.take() else {
            return;
        };
        if self.telemetry.is_enabled() {
            let counts = self.engine.op_counts();
            self.telemetry
                .add_counter("ga.selections", counts.selections);
            self.telemetry
                .add_counter("ga.crossovers", counts.crossovers);
            self.telemetry
                .add_counter("ga.mutated_genes", counts.mutated_genes);
            self.telemetry
                .add_counter("ga.elite_copies", counts.elite_copies);
            self.telemetry
                .add_counter("ga.random_genes", counts.random_genes);
            self.telemetry
                .set_gauge("run.generations", f64::from(self.generation));
            if let Some(best) = &self.best {
                self.telemetry.set_gauge("run.best_fitness", best.fitness);
            }
        }
        drop(run_span);
        self.telemetry.finish();
    }

    /// Evaluates candidates in parallel across the configured number of
    /// threads (the substrate analogue of the paper's per-individual
    /// measure step, which dominates runtime: "5 seconds per measurement …
    /// the runtime is approximately 7 hours").
    ///
    /// Candidates are pulled from a shared atomic cursor (work-stealing),
    /// but results land in per-candidate slots, so the population order —
    /// and therefore the search — is independent of thread scheduling.
    fn evaluate(
        &self,
        generation: u32,
        candidates: Vec<Candidate<Gene>>,
        parent_span: Option<u64>,
    ) -> Result<Population<Gene>, GestError> {
        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        }
        .min(candidates.len().max(1));

        let eval_span = self.telemetry.span_under(
            parent_span,
            "evaluate",
            &[
                ("generation", u64::from(generation).into()),
                ("candidates", candidates.len().into()),
                ("threads", threads.into()),
            ],
        );
        let eval_id = eval_span.id();

        type Slot = Mutex<Option<Result<Evaluated<Gene>, GestError>>>;
        let results: Vec<Slot> = candidates.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let candidates_ref = &candidates;
        let results_ref = &results;
        let next_ref = &next;

        std::thread::scope(|scope| {
            for worker in 0..threads {
                scope.spawn(move || loop {
                    let index = next_ref.fetch_add(1, Ordering::Relaxed);
                    let Some(candidate) = candidates_ref.get(index) else {
                        break;
                    };
                    let outcome = self.evaluate_candidate(generation, candidate, worker, eval_id);
                    *results_ref[index]
                        .lock()
                        .expect("result slot is not poisoned") = Some(outcome);
                });
            }
        });

        drop(eval_span);
        let mut individuals = Vec::with_capacity(candidates.len());
        for slot in results {
            match slot
                .into_inner()
                .expect("result slot is not poisoned")
                .expect("every candidate was evaluated")
            {
                Ok(evaluated) => individuals.push(evaluated),
                Err(e) => return Err(e),
            }
        }
        Ok(Population {
            generation,
            individuals,
        })
    }

    /// One worker-side evaluation: opens the per-candidate span (parented
    /// to the surrounding `evaluate` span, since the thread-local stack
    /// cannot see across threads), converts worker panics into
    /// [`GestError::Measurement`] so one bad measurement plug-in fails the
    /// run cleanly instead of aborting the process, and records latency
    /// and per-worker utilization metrics.
    fn evaluate_candidate(
        &self,
        generation: u32,
        candidate: &Candidate<Gene>,
        worker: usize,
        parent_span: Option<u64>,
    ) -> Result<Evaluated<Gene>, GestError> {
        let span = self.telemetry.span_under(
            parent_span,
            "eval.candidate",
            &[
                ("candidate", candidate.id.into()),
                ("generation", u64::from(generation).into()),
                ("worker", worker.into()),
            ],
        );
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.evaluate_one(generation, candidate)
        }))
        .unwrap_or_else(|payload| {
            Err(GestError::Measurement {
                candidate: candidate.id,
                message: panic_message(payload),
            })
        });
        if self.telemetry.is_enabled() {
            let elapsed_us = started.elapsed().as_secs_f64() * 1e6;
            self.telemetry
                .record("eval.latency_us", &latency_buckets(), elapsed_us);
            self.telemetry
                .add_counter(&format!("eval.worker.{worker}.candidates"), 1);
            if outcome.is_err() {
                self.telemetry.add_counter("eval.failures", 1);
            }
        }
        drop(span);
        outcome
    }

    fn evaluate_one(
        &self,
        generation: u32,
        candidate: &Candidate<Gene>,
    ) -> Result<Evaluated<Gene>, GestError> {
        let program = self.materialize(&format!("{generation}_{}", candidate.id), &candidate.genes);
        let (measurements, detail) = self.measurement.measure_detailed(&program)?;
        if self.telemetry.is_enabled() {
            if let Some(result) = &detail {
                let buckets = sim_buckets();
                for (key, value) in result.metric_kv() {
                    self.telemetry
                        .record(&format!("sim.{key}"), &buckets, value);
                }
            }
        }
        let fitness = self.fitness.fitness(&FitnessContext {
            measurements: &measurements,
            genes: &candidate.genes,
            pool: &self.config.pool,
        });
        Ok(Evaluated {
            id: candidate.id,
            parents: candidate.parents,
            genes: candidate.genes.clone(),
            fitness,
            measurements,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GestConfig;

    fn tiny_config(machine: &str, measurement: &str) -> GestConfig {
        GestConfig::builder(machine)
            .measurement(measurement)
            .population_size(6)
            .individual_size(8)
            .generations(3)
            .seed(11)
            .build()
            .unwrap()
    }

    #[test]
    fn run_improves_or_holds_power_fitness() {
        let summary = GestRun::new(tiny_config("cortex-a15", "power"))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(summary.generations, 3);
        let series = summary.history.best_series();
        assert_eq!(series.len(), 3);
        // Elitism: monotone non-decreasing best fitness.
        for window in series.windows(2) {
            assert!(window[1] >= window[0] - 1e-12, "{series:?}");
        }
        assert!(summary.best.fitness > 0.0);
        assert_eq!(summary.metric_names[0], "avg_power_w");
        assert_eq!(summary.best_breakdown().iter().sum::<usize>(), 8);
    }

    #[test]
    fn runs_are_reproducible() {
        let a = GestRun::new(tiny_config("cortex-a7", "power"))
            .unwrap()
            .run()
            .unwrap();
        let b = GestRun::new(tiny_config("cortex-a7", "power"))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(a.best.genes, b.best.genes);
        assert_eq!(a.best.fitness, b.best.fitness);
    }

    #[test]
    fn single_thread_matches_parallel() {
        let mut parallel_cfg = tiny_config("cortex-a7", "ipc");
        parallel_cfg.threads = 4;
        let mut serial_cfg = tiny_config("cortex-a7", "ipc");
        serial_cfg.threads = 1;
        let a = GestRun::new(parallel_cfg).unwrap().run().unwrap();
        let b = GestRun::new(serial_cfg).unwrap().run().unwrap();
        assert_eq!(a.best.genes, b.best.genes);
    }

    #[test]
    fn voltage_noise_run_on_athlon() {
        let summary = GestRun::new(tiny_config("athlon-x4", "voltage_noise"))
            .unwrap()
            .run()
            .unwrap();
        assert!(summary.best.fitness > 0.0, "p2p noise should be positive");
        assert_eq!(summary.metric_names[0], "peak_to_peak_v");
    }

    #[test]
    fn step_api_exposes_populations() {
        let mut run = GestRun::new(tiny_config("cortex-a15", "power")).unwrap();
        assert!(run.population().is_none());
        let population = run.step().unwrap();
        assert_eq!(population.generation, 0);
        assert_eq!(population.len(), 6);
        run.step().unwrap();
        assert_eq!(run.population().unwrap().generation, 1);
        assert_eq!(run.history().summaries().len(), 2);
    }

    #[test]
    fn worker_panic_surfaces_as_measurement_error() {
        use crate::measurement::Measurement;

        /// Panics on one specific candidate, like a measurement plug-in
        /// with a latent bug.
        #[derive(Debug)]
        struct Panicky;
        impl Measurement for Panicky {
            fn name(&self) -> &'static str {
                "panicky"
            }
            fn metrics(&self) -> &'static [&'static str] {
                &["value"]
            }
            fn measure(&self, program: &Program) -> Result<Vec<f64>, GestError> {
                assert!(program.name != "0_2", "instrument exploded");
                Ok(vec![1.0])
            }
        }

        let config = tiny_config("cortex-a15", "power");
        let err = GestRun::with_measurement(config, Arc::new(Panicky))
            .unwrap()
            .run()
            .unwrap_err();
        match err {
            GestError::Measurement { candidate, message } => {
                assert_eq!(candidate, 2);
                assert!(message.contains("instrument exploded"), "{message}");
            }
            other => panic!("expected a measurement error, got: {other}"),
        }
    }

    #[test]
    fn traced_run_emits_spans_metrics_and_stays_deterministic() {
        use gest_telemetry::{Event, MemorySink};

        let sink = Arc::new(MemorySink::default());
        let mut config = tiny_config("cortex-a7", "power");
        config.telemetry = Telemetry::new(sink.clone());
        let traced = GestRun::new(config).unwrap().run().unwrap();

        // Telemetry observes the search without perturbing it.
        let plain = GestRun::new(tiny_config("cortex-a7", "power"))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(traced.best.genes, plain.best.genes);
        assert_eq!(traced.best.fitness, plain.best.fitness);

        let events = sink.events();
        let span_starts = |name: &str| {
            events
                .iter()
                .filter(|e| matches!(e, Event::SpanStart { name: n, .. } if n == name))
                .count()
        };
        assert_eq!(span_starts("run"), 1);
        assert_eq!(span_starts("generation"), 3);
        assert_eq!(span_starts("breed"), 3);
        assert_eq!(span_starts("evaluate"), 3);
        assert_eq!(
            span_starts("eval.candidate"),
            18,
            "6 candidates x 3 generations"
        );
        let span_ends = events
            .iter()
            .filter(|e| matches!(e, Event::SpanEnd { .. }))
            .count();
        let starts = events
            .iter()
            .filter(|e| matches!(e, Event::SpanStart { .. }))
            .count();
        assert_eq!(span_ends, starts, "every span closes");

        let points = events
            .iter()
            .filter(|e| matches!(e, Event::Point { name, .. } if name == "generation"))
            .count();
        assert_eq!(points, 3);

        let counter = |wanted: &str| {
            events.iter().find_map(|e| match e {
                Event::Counter { name, value } if name == wanted => Some(*value),
                _ => None,
            })
        };
        assert_eq!(
            counter("ga.random_genes"),
            Some(6 * 8),
            "seeding draws fresh genes"
        );
        assert!(counter("ga.selections").unwrap() > 0);
        assert!(counter("ga.crossovers").unwrap() > 0);
        assert!(
            counter("ga.elite_copies").unwrap() >= 2,
            "two bred generations"
        );
        let worker_total: u64 = events
            .iter()
            .filter_map(|e| match e {
                Event::Counter { name, value }
                    if name.starts_with("eval.worker.") && name.ends_with(".candidates") =>
                {
                    Some(*value)
                }
                _ => None,
            })
            .sum();
        assert_eq!(
            worker_total, 18,
            "thread-utilization counters cover every candidate"
        );

        let histogram = |wanted: &str| {
            events.iter().find_map(|e| match e {
                Event::Histogram { name, snapshot } if name == wanted => Some(snapshot.clone()),
                _ => None,
            })
        };
        assert_eq!(histogram("eval.latency_us").unwrap().count, 18);
        assert_eq!(
            histogram("sim.ipc").unwrap().count,
            18,
            "simulator stats become metrics"
        );

        let gauge = |wanted: &str| {
            events.iter().find_map(|e| match e {
                Event::Gauge { name, value } if name == wanted => Some(*value),
                _ => None,
            })
        };
        assert_eq!(gauge("run.generations"), Some(3.0));
        assert_eq!(gauge("run.best_fitness"), Some(traced.best.fitness));
    }

    #[test]
    fn output_dir_receives_files_and_seeds_new_run() {
        let dir = std::env::temp_dir().join(format!("gest_runner_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = tiny_config("cortex-a15", "power");
        config.output_dir = Some(dir.clone());
        let summary = GestRun::new(config).unwrap().run().unwrap();
        let files = OutputWriter::population_files(&dir).unwrap();
        assert_eq!(files.len(), 3, "one population file per generation");

        // Seed a new run from the last population: its seed generation
        // must already contain the old best fitness (elite genes carried).
        let mut seeded_cfg = tiny_config("cortex-a15", "power");
        seeded_cfg.seed_population = Some(files.last().unwrap().clone());
        let mut seeded = GestRun::new(seeded_cfg).unwrap();
        let first = seeded.step().unwrap();
        assert!(
            first.best().unwrap().fitness >= summary.best.fitness * 0.99,
            "seeded run should start near the previous best"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
