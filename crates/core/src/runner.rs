//! The run driver: coordinates the GA engine, measurement, fitness, and
//! outputs across generations (the paper's Figure 2 loop).

use crate::checkpoint::{config_fingerprint, Checkpoint};
use crate::config::GestConfig;
use crate::error::GestError;
use crate::evalbackend::{
    catch_measure, catch_measure_batch, watchdog_measure, EvalBackend, EvalRequest, LocalBackend,
};
use crate::evalcache::{genes_hash, CachedEval, EvalCache, EvalCacheStats, EvalKey};
use crate::fault::QUARANTINE_FITNESS;
use crate::fitness::{Fitness, FitnessContext};
use crate::genetics::PoolGenetics;
use crate::health;
use crate::measurement::Measurement;
use crate::output::{OutputWriter, RealFs, SavedIndividual, SavedPopulation, WriteFs};
use crate::registry::{FitnessParams, Registry};
use crate::surrogate::{SurrogateMode, SurrogateModel, SurrogateOptions, SPEARMAN_GATE};
use gest_ga::{Candidate, Evaluated, ExplorationSampler, GaEngine, History, Population};
use gest_isa::features::{featurize, FeatureVec};
use gest_isa::{Gene, Program};
use gest_telemetry::{Buckets, FieldValue, SpanGuard, Telemetry};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Latency buckets for `eval.latency_us`: 100µs up to 100s, one decade
/// per bucket.
fn latency_buckets() -> Buckets {
    Buckets::exponential(100.0, 10.0, 7)
}

/// Wide-range buckets for `sim.*` value histograms; summary statistics
/// (min/mean/max) stay exact regardless of bucket resolution.
fn sim_buckets() -> Buckets {
    Buckets::exponential(1e-6, 10.0, 16)
}

/// Write-once result slot: each candidate index is claimed by exactly one
/// evaluation slot through the dispatch cursor.
type EvalSlot = OnceLock<Result<Evaluated<Gene>, GestError>>;

/// What one [`GestRun::step`] call did — the contract that lets an
/// external scheduler (e.g. `gest-serve`) multiplex many runs over one
/// thread by repeatedly stepping each until `Budget`.
///
/// `Converged` is advisory: the generation ran and the budget still has
/// room, but the search health reports a fitness plateau. A driver that
/// wants byte-identical artifacts to `GestRun::run` must keep stepping
/// through `Converged` until `Budget` (the blocking loop does exactly
/// that); a scheduler may instead use it to deprioritize stalled runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// One generation completed; budget remains and fitness is still
    /// improving.
    Progressed,
    /// One generation completed and budget remains, but the convergence
    /// history reports a plateau (see [`crate::health`]).
    Converged,
    /// The configured generation budget is exhausted. The call that
    /// completes the final generation returns `Budget`; further calls
    /// are no-ops that return `Budget` again.
    Budget,
}

impl StepOutcome {
    /// Whether the run has nothing left to do (`Budget`).
    pub fn is_terminal(self) -> bool {
        matches!(self, StepOutcome::Budget)
    }
}

/// Final outcome of a GeST search.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// The fittest individual found across all generations.
    pub best: Evaluated<Gene>,
    /// The program the best individual materializes to.
    pub best_program: Program,
    /// Per-generation convergence history.
    pub history: History,
    /// Number of generations evaluated (including the seed generation).
    pub generations: u32,
    /// Metric names of the measurement used.
    pub metric_names: Vec<&'static str>,
}

impl RunSummary {
    /// Instruction-class breakdown of the best individual, in
    /// [`gest_isa::InstrClass::ALL`] order (the paper's Table III/IV rows).
    pub fn best_breakdown(&self) -> [usize; 6] {
        gest_isa::InstructionPool::class_breakdown(&self.best.genes)
    }

    /// Unique instruction definitions used by the best individual (the
    /// paper's simplicity metric).
    pub fn best_unique_defs(&self) -> usize {
        gest_isa::InstructionPool::unique_defs(&self.best.genes)
    }
}

/// A configured GeST search.
///
/// Built by [`GestRun::builder`] (or restored from a crashed run's output
/// directory by [`GestRun::resume`]). Use [`GestRun::run`] for the whole
/// search, or [`GestRun::step`] to drive it generation by generation
/// (e.g. for live plotting).
#[derive(Debug)]
pub struct GestRun {
    config: GestConfig,
    /// FNV-1a of the run's canonical `config.xml` rendering, stamped into
    /// every checkpoint manifest so resume can refuse mismatched
    /// configurations.
    config_fingerprint: u64,
    engine: GaEngine<PoolGenetics>,
    measurement: Arc<dyn Measurement>,
    fitness: Arc<dyn Fitness>,
    history: History,
    writer: Option<OutputWriter>,
    current: Option<Population<Gene>>,
    best: Option<Evaluated<Gene>>,
    generation: u32,
    telemetry: Telemetry,
    /// Open for the whole search; closed by [`GestRun::finish`].
    run_span: Option<SpanGuard>,
    /// Content-addressed result cache; `None` when disabled by
    /// configuration or when the measurement is not content-pure.
    eval_cache: Option<Arc<EvalCache>>,
    /// Where raw candidate measurements execute (local threads by
    /// default; `gest-dist` plugs remote workers in here).
    backend: Arc<dyn EvalBackend>,
    /// How persistence writes reach disk ([`RealFs`] by default;
    /// fault-injection harnesses substitute a failing shim here).
    write_fs: Arc<dyn WriteFs>,
    /// Surrogate screening state; `None` when [`SurrogateMode::Off`].
    /// Behind a `Mutex` only because [`GestRun::evaluate`] takes `&self`
    /// across a thread scope — the lock is taken exclusively on the main
    /// thread (plan before the waves, update after), in canonical
    /// candidate order, which is what keeps screening deterministic.
    surrogate: Option<Mutex<SurrogateRuntime>>,
}

/// Builder for [`GestRun`] — the typed replacement for the old
/// `GestRun::new` / `GestRun::with_measurement` pair.
///
/// Exactly one of [`config`](GestRunBuilder::config) or
/// [`resume_from`](GestRunBuilder::resume_from) is required; everything
/// else is optional.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), gest_core::GestError> {
/// use gest_core::{GestConfig, GestRun};
///
/// let config = GestConfig::builder("cortex-a15")
///     .population_size(6)
///     .individual_size(8)
///     .generations(2)
///     .build()?;
/// let summary = GestRun::builder().config(config).build()?.run()?;
/// assert!(summary.best.fitness > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct GestRunBuilder {
    config: Option<GestConfig>,
    resume_dir: Option<PathBuf>,
    measurement: Option<Arc<dyn Measurement>>,
    registry: Option<Registry>,
    telemetry: Option<Telemetry>,
    eval_cache: Option<bool>,
    eval_cache_handle: Option<Arc<EvalCache>>,
    eval_backend: Option<Arc<dyn EvalBackend>>,
    write_fs: Option<Arc<dyn WriteFs>>,
    lane_width: Option<usize>,
    surrogate: Option<SurrogateOptions>,
}

impl GestRunBuilder {
    /// Supplies the run configuration (for a fresh search).
    pub fn config(mut self, config: GestConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Restores a checkpointed run from its output directory instead of
    /// starting fresh: the configuration is read back from the
    /// directory's `config.xml`, the search state from its checkpoint
    /// manifest and last population file.
    pub fn resume_from(mut self, dir: impl Into<PathBuf>) -> Self {
        self.resume_dir = Some(dir.into());
        self
    }

    /// Uses an explicit measurement instance instead of resolving
    /// `config.measurement_name` through the registry — the programmatic
    /// equivalent of dropping a custom measurement class next to the
    /// framework (paper §III.C), e.g. a [`crate::NoisyMeasurement`]
    /// wrapper.
    pub fn measurement(mut self, measurement: Arc<dyn Measurement>) -> Self {
        self.measurement = Some(measurement);
        self
    }

    /// Resolves plug-in names through a custom [`Registry`] instead of
    /// the shipped default — the way to make user-defined measurements
    /// and fitness functions addressable from configuration files.
    pub fn registry(mut self, registry: Registry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Overrides the configuration's telemetry handle (convenient when
    /// the configuration came from XML, which cannot carry one).
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Forces the evaluation cache on or off, overriding
    /// [`GestConfig::eval_cache`] — needed for resumed runs, whose
    /// configuration is read back from `config.xml` (which does not carry
    /// execution details), and for the CLI's `--no-eval-cache` flag.
    pub fn eval_cache(mut self, on: bool) -> Self {
        self.eval_cache = Some(on);
        self
    }

    /// Overrides [`GestConfig::lane_width`] — needed for resumed runs,
    /// whose configuration is read back from `config.xml` (which does not
    /// carry execution details), and for the CLI's `--lane-width` flag.
    /// Any width produces byte-identical search artifacts.
    pub fn lane_width(mut self, lane_width: usize) -> Self {
        self.lane_width = Some(lane_width);
        self
    }

    /// Overrides [`GestConfig::surrogate`] — needed for resumed runs,
    /// whose configuration is read back from `config.xml` (which does not
    /// carry execution-policy knobs), and for the CLI's `--surrogate`
    /// flags. See [`crate::surrogate`].
    pub fn surrogate(mut self, options: SurrogateOptions) -> Self {
        self.surrogate = Some(options);
        self
    }

    /// Shares a pre-built evaluation cache with this run instead of
    /// starting cold — the way to amortize evaluation work across several
    /// runs of the same configuration (repeated continuation segments,
    /// re-running a converged search, `gest bench`). The handle is used
    /// only when its configuration fingerprint matches this run's and the
    /// cache is otherwise enabled; a mismatched or superfluous handle is
    /// ignored and the run starts cold as usual. Content-addressing makes
    /// the sharing safe: a hit is bit-identical to a fresh evaluation by
    /// construction.
    pub fn eval_cache_handle(mut self, cache: Arc<EvalCache>) -> Self {
        self.eval_cache_handle = Some(cache);
        self
    }

    /// Installs a custom [`EvalBackend`] deciding *where* candidate
    /// measurements execute (e.g. `gest-dist`'s TCP `Coordinator`).
    /// Defaults to [`LocalBackend`] over the configured thread count.
    ///
    /// Everything determinism-relevant — cache lookups, fitness, fault
    /// policy, result ordering — stays in the runner, so a backend swap
    /// cannot change the evolved result.
    pub fn eval_backend(mut self, backend: Arc<dyn EvalBackend>) -> Self {
        self.eval_backend = Some(backend);
        self
    }

    /// Routes persistence writes (checkpoint manifests, eval-cache
    /// sidecars) through a custom [`WriteFs`] instead of the real
    /// filesystem. Defaults to [`RealFs`]; fault-injection harnesses use
    /// this seam to simulate disk-full and torn writes against the real
    /// persistence logic.
    pub fn write_fs(mut self, fs: Arc<dyn WriteFs>) -> Self {
        self.write_fs = Some(fs);
        self
    }

    /// Builds the run: resolves plug-ins, prepares the GA engine, opens
    /// the output directory, and — when resuming — restores engine,
    /// history, best individual, and current population from the
    /// checkpoint.
    ///
    /// # Errors
    ///
    /// [`GestError::Config`] when neither (or both) of `config` and
    /// `resume_from` were given, for unknown plug-in names, or when a
    /// checkpoint's fingerprint does not match the directory's
    /// `config.xml`; I/O and codec errors reading checkpoint state.
    pub fn build(self) -> Result<GestRun, GestError> {
        let registry = self.registry.unwrap_or_default();
        match (self.config, self.resume_dir) {
            (Some(_), Some(_)) => Err(GestError::Config(
                "GestRun::builder(): config(..) and resume_from(..) are mutually exclusive".into(),
            )),
            (None, None) => Err(GestError::Config(
                "GestRun::builder(): either config(..) or resume_from(..) is required".into(),
            )),
            (Some(mut config), None) => {
                if let Some(telemetry) = self.telemetry {
                    config.telemetry = telemetry;
                }
                if let Some(on) = self.eval_cache {
                    config.eval_cache = on;
                }
                if let Some(lane_width) = self.lane_width {
                    config.lane_width = lane_width;
                }
                if let Some(surrogate) = self.surrogate {
                    config.surrogate = surrogate;
                }
                let fingerprint = config_fingerprint(&config.to_xml().to_string());
                let measurement = match self.measurement {
                    Some(measurement) => measurement,
                    None => registry.build_measurement(
                        &config.measurement_name,
                        config.machine.clone(),
                        config.run_config,
                    )?,
                };
                GestRun::assemble(
                    config,
                    fingerprint,
                    measurement,
                    &registry,
                    None,
                    self.eval_cache_handle,
                    self.eval_backend,
                    self.write_fs,
                )
            }
            (None, Some(dir)) => {
                // Checkpoint first: its absence has the most actionable
                // error message ("was checkpointing enabled?").
                let checkpoint = Checkpoint::load(&dir)?;
                let raw = std::fs::read_to_string(dir.join("config.xml"))?;
                let mut config = GestConfig::from_xml_str(&raw)?;
                if let Some(telemetry) = self.telemetry {
                    config.telemetry = telemetry;
                }
                if let Some(on) = self.eval_cache {
                    config.eval_cache = on;
                }
                if let Some(lane_width) = self.lane_width {
                    config.lane_width = lane_width;
                }
                if let Some(surrogate) = self.surrogate {
                    config.surrogate = surrogate;
                }
                let fingerprint = config_fingerprint(&raw);
                if checkpoint.config_fingerprint != fingerprint {
                    return Err(GestError::Config(format!(
                        "checkpoint in {} was written under a different configuration \
                         (fingerprint {:016x}, config.xml hashes to {:016x}); \
                         refusing to resume into a diverged search",
                        dir.display(),
                        checkpoint.config_fingerprint,
                        fingerprint
                    )));
                }
                if checkpoint.generation == 0 {
                    return Err(GestError::Config(
                        "checkpoint precedes the first completed generation".into(),
                    ));
                }
                let population_file =
                    dir.join(format!("population_{:04}.bin", checkpoint.generation - 1));
                let population = SavedPopulation::load(&population_file)?.to_population();
                if population.generation != checkpoint.generation - 1 {
                    return Err(GestError::Config(format!(
                        "population file {} holds generation {} but the checkpoint \
                         expects generation {}",
                        population_file.display(),
                        population.generation,
                        checkpoint.generation - 1
                    )));
                }
                let measurement = match self.measurement {
                    Some(measurement) => measurement,
                    None => registry.build_measurement(
                        &config.measurement_name,
                        config.machine.clone(),
                        config.run_config,
                    )?,
                };
                GestRun::assemble(
                    config,
                    fingerprint,
                    measurement,
                    &registry,
                    Some(ResumeState {
                        dir,
                        checkpoint,
                        population,
                    }),
                    self.eval_cache_handle,
                    self.eval_backend,
                    self.write_fs,
                )
            }
        }
    }
}

/// State carried from a checkpoint into [`GestRun::assemble`].
struct ResumeState {
    dir: PathBuf,
    checkpoint: Checkpoint,
    population: Population<Gene>,
}

/// Resolved surrogate screening state ([`SurrogateMode::Screen`] only).
#[derive(Debug)]
struct SurrogateRuntime {
    model: SurrogateModel,
    /// Top predicted candidates fully simulated per generation.
    topk: usize,
    /// Exploration quota drawn from the screened-out remainder.
    explore: usize,
    /// Sample floor before the confidence gate may open.
    min_samples: u64,
    /// Cumulative candidates assigned surrogate fitness.
    screened_total: u64,
    /// Cumulative candidates fully simulated while screening was active.
    simulated_total: u64,
    /// Candidate ids screened in the latest generation — excluded from
    /// best-individual updates, so only *measured* fitness can become the
    /// run's best.
    screened_last: HashSet<u64>,
    /// Gate state of the latest planned generation.
    last_gate_open: bool,
    /// Warmed up yet still below the correlation threshold: the run has
    /// degraded to 100% full simulation.
    degraded: bool,
    /// One-shot latch for the degradation warning.
    warned_degraded: bool,
}

/// Per-generation screening decisions, computed coordinator-side on the
/// main thread *before* any evaluation wave is dispatched — backends
/// (local threads or distributed workers) only ever see the candidates
/// that survived screening.
struct ScreenPlan {
    /// Feature vector per candidate index.
    features: Vec<FeatureVec>,
    /// Raw model prediction per candidate index.
    predictions: Vec<f64>,
    /// Whether the predictions came from a fitted model; rank-correlation
    /// pairs are recorded only then (an unfitted model predicts a
    /// constant, which would poison the Spearman window with ties).
    fitted: bool,
    /// Whether the confidence gate allowed screening this generation.
    gate_open: bool,
    /// `(candidate index, calibrated surrogate fitness)` for every
    /// candidate excused from simulation.
    skipped: Vec<(usize, f64)>,
    /// Index set of `skipped`.
    skipped_set: HashSet<usize>,
}

/// Point-in-time surrogate screening counters (see
/// [`GestRun::surrogate_stats`]).
#[derive(Debug, Clone, Copy)]
pub struct SurrogateStats {
    /// Rolling Spearman rank correlation between predicted and measured
    /// fitness; `None` until enough out-of-sample pairs exist.
    pub spearman: Option<f64>,
    /// Cumulative candidates assigned surrogate fitness instead of
    /// simulation.
    pub screened: u64,
    /// Cumulative candidates fully simulated (and used as training
    /// pairs).
    pub simulated: u64,
    /// Whether the confidence gate was open at the latest generation.
    pub gate_open: bool,
    /// Training observations accumulated by the model.
    pub samples: u64,
}

impl GestRun {
    /// Starts building a run. See [`GestRunBuilder`].
    pub fn builder() -> GestRunBuilder {
        GestRunBuilder::default()
    }

    /// Restores a checkpointed run from its output directory with the
    /// default registry — shorthand for
    /// `GestRun::builder().resume_from(dir).build()`.
    ///
    /// The restored run continues bit-identically to one that was never
    /// interrupted: the GA RNG stream, id allocation, history, and best
    /// individual all pick up exactly where the checkpoint left them.
    ///
    /// # Errors
    ///
    /// See [`GestRunBuilder::build`].
    pub fn resume(dir: impl Into<PathBuf>) -> Result<GestRun, GestError> {
        GestRun::builder().resume_from(dir).build()
    }

    /// Builds the run: resolves the measurement and fitness plug-ins by
    /// name, prepares the GA engine, and opens the output directory when
    /// configured.
    ///
    /// # Errors
    ///
    /// Configuration errors for unknown plug-in names; I/O errors opening
    /// the output directory.
    #[deprecated(since = "0.2.0", note = "use GestRun::builder().config(..).build()")]
    pub fn new(config: GestConfig) -> Result<GestRun, GestError> {
        GestRun::builder().config(config).build()
    }

    /// Like `GestRun::new` but with an explicit measurement instance.
    ///
    /// # Errors
    ///
    /// Same as `GestRun::new`.
    #[deprecated(
        since = "0.2.0",
        note = "use GestRun::builder().config(..).measurement(..).build()"
    )]
    pub fn with_measurement(
        config: GestConfig,
        measurement: Arc<dyn Measurement>,
    ) -> Result<GestRun, GestError> {
        GestRun::builder()
            .config(config)
            .measurement(measurement)
            .build()
    }

    /// The shared tail of fresh construction and resume.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        config: GestConfig,
        fingerprint: u64,
        measurement: Arc<dyn Measurement>,
        registry: &Registry,
        resume: Option<ResumeState>,
        shared_cache: Option<Arc<EvalCache>>,
        backend: Option<Arc<dyn EvalBackend>>,
        write_fs: Option<Arc<dyn WriteFs>>,
    ) -> Result<GestRun, GestError> {
        // Equation-1 parameters: idle temperature = steady state under
        // static power alone; max = TJMAX (overridable via
        // `fitness_override`).
        let idle_c = config
            .machine
            .thermal
            .steady_state_c(config.machine.energy.static_w);
        let fitness = match &config.fitness_override {
            Some(custom) => Arc::clone(custom),
            None => registry.build_fitness(
                &config.fitness_name,
                FitnessParams {
                    idle_c,
                    max_c: config.machine.thermal.tjmax_c,
                },
            )?,
        };
        let genetics = PoolGenetics::new(Arc::clone(&config.pool))
            .with_whole_instruction_prob(config.whole_instruction_mutation_prob);
        let mut engine = GaEngine::new(config.ga, genetics, config.seed);
        let writer = match &resume {
            Some(state) => Some(OutputWriter::reopen(&state.dir)?),
            None => match &config.output_dir {
                Some(dir) => Some(OutputWriter::new(dir, &config, &config.template)?),
                None => None,
            },
        };
        let telemetry = config.telemetry.clone();
        let resumed_from = resume.as_ref().map(|state| state.checkpoint.generation);
        let run_span = Some(telemetry.span_with(
            "run",
            &[
                // Hex config fingerprint doubles as the run id surfaced
                // by the live /status endpoint.
                ("config_fp", format!("{fingerprint:016x}").into()),
                ("machine", config.machine.name.as_str().into()),
                ("measurement", measurement.name().into()),
                ("population_size", config.ga.population_size.into()),
                ("generations", u64::from(config.generations).into()),
                ("seed", config.seed.into()),
                ("resumed_from", u64::from(resumed_from.unwrap_or(0)).into()),
            ],
        ));
        // Cache only content-pure measurements: their results depend
        // solely on program content, so a hit is bit-identical to a fresh
        // run. A caller-shared handle with a matching fingerprint is used
        // as-is (already warm); otherwise, on resume the sidecar written
        // by the last checkpoint warms the cache back up (best-effort — a
        // missing or stale sidecar just starts cold).
        let eval_cache = if config.eval_cache && measurement.content_pure() {
            Some(match shared_cache {
                Some(cache) if cache.config_fingerprint() == fingerprint => cache,
                _ => Arc::new(match &resume {
                    Some(state) => {
                        EvalCache::load(&state.dir, fingerprint, config.eval_cache_bytes)
                    }
                    None => EvalCache::new(config.eval_cache_bytes, fingerprint),
                }),
            })
        } else {
            None
        };
        let backend = backend.unwrap_or_else(|| {
            Arc::new(
                LocalBackend::new(
                    Arc::clone(&measurement),
                    config.template.clone(),
                    config.threads,
                )
                .with_lane_width(config.lane_width),
            )
        });
        // Surrogate screening state. On resume, the sidecar written at the
        // last checkpoint restores the model bit-exactly (the resumed run
        // continues byte-identically to an uninterrupted one); when it is
        // missing or stale, the model warm-starts from the restored
        // population's measured pairs instead (best-effort — the search
        // stays valid, only the screening schedule may differ).
        let surrogate = match config.surrogate.mode {
            SurrogateMode::Off => None,
            SurrogateMode::Screen => {
                let population_size = config.ga.population_size;
                let topk = if config.surrogate.topk == 0 {
                    (population_size / 4).max(1)
                } else {
                    config.surrogate.topk
                };
                let model = match &resume {
                    None => SurrogateModel::new(),
                    Some(state) => {
                        SurrogateModel::load(&state.dir, fingerprint, state.checkpoint.generation)
                            .unwrap_or_else(|| {
                                let mut model = SurrogateModel::new();
                                for individual in &state.population.individuals {
                                    if individual.fitness.is_finite() {
                                        model.observe(
                                            &featurize(&individual.genes),
                                            individual.fitness,
                                        );
                                    }
                                }
                                model.fit();
                                telemetry.point(
                                    "surrogate.warmstart",
                                    &[("samples", model.samples().into())],
                                );
                                model
                            })
                    }
                };
                Some(Mutex::new(SurrogateRuntime {
                    model,
                    topk,
                    explore: config.surrogate.explore,
                    min_samples: 2 * population_size as u64,
                    screened_total: 0,
                    simulated_total: 0,
                    screened_last: HashSet::new(),
                    last_gate_open: false,
                    degraded: false,
                    warned_degraded: false,
                }))
            }
        };
        let (history, current, best, generation) = match resume {
            None => (History::new(), None, None, 0),
            Some(state) => {
                engine.restore_state(state.checkpoint.engine);
                telemetry.point(
                    "resume",
                    &[
                        ("generation", u64::from(state.checkpoint.generation).into()),
                        ("history", state.checkpoint.history.len().into()),
                    ],
                );
                telemetry.add_counter("checkpoint.resumes", 1);
                (
                    History::from_summaries(state.checkpoint.history),
                    Some(state.population),
                    state.checkpoint.best.map(|b| b.to_evaluated()),
                    state.checkpoint.generation,
                )
            }
        };
        Ok(GestRun {
            config,
            config_fingerprint: fingerprint,
            engine,
            measurement,
            fitness,
            history,
            writer,
            current,
            best,
            generation,
            telemetry,
            run_span,
            eval_cache,
            backend,
            write_fs: write_fs.unwrap_or_else(|| Arc::new(RealFs)),
            surrogate,
        })
    }

    /// Locks the surrogate runtime; `None` when screening is off. Poison
    /// recovery mirrors the eval cache: the runtime is only ever locked on
    /// the main thread, so a poisoned lock means an earlier panic already
    /// unwound — the state is still the last consistent snapshot.
    fn surrogate_lock(&self) -> Option<MutexGuard<'_, SurrogateRuntime>> {
        self.surrogate
            .as_ref()
            .map(|runtime| runtime.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Point-in-time surrogate screening counters, or `None` when
    /// screening is off.
    pub fn surrogate_stats(&self) -> Option<SurrogateStats> {
        let runtime = self.surrogate_lock()?;
        Some(SurrogateStats {
            spearman: runtime.model.spearman(),
            screened: runtime.screened_total,
            simulated: runtime.simulated_total,
            gate_open: runtime.last_gate_open,
            samples: runtime.model.samples(),
        })
    }

    /// Point-in-time counters of the evaluation cache, or `None` when the
    /// cache is disabled (configuration, `--no-eval-cache`, or a
    /// measurement that is not content-pure).
    pub fn eval_cache_stats(&self) -> Option<EvalCacheStats> {
        self.eval_cache.as_ref().map(|cache| cache.stats())
    }

    /// The convergence history so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The most recently evaluated population.
    pub fn population(&self) -> Option<&Population<Gene>> {
        self.current.as_ref()
    }

    /// Generations completed so far (equals the next generation index).
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// The best individual seen so far, if any generation completed.
    pub fn best(&self) -> Option<&Evaluated<Gene>> {
        self.best.as_ref()
    }

    /// Total generations this run is configured for.
    pub fn target_generations(&self) -> u32 {
        self.config.generations
    }

    /// Whether all configured generations have completed.
    pub fn is_complete(&self) -> bool {
        self.generation >= self.config.generations
    }

    /// The run's output directory, when one is configured.
    pub fn output_dir(&self) -> Option<&std::path::Path> {
        self.writer.as_ref().map(OutputWriter::dir)
    }

    /// The FNV-1a fingerprint of the run's canonical `config.xml`
    /// rendering — the key under which checkpoints and shared eval-cache
    /// handles are matched.
    pub fn config_fingerprint(&self) -> u64 {
        self.config_fingerprint
    }

    /// Materializes an individual's genes into a runnable program.
    pub fn materialize(&self, name: &str, genes: &[Gene]) -> Program {
        let body = gest_isa::InstructionPool::flatten(genes);
        self.config.template.materialize(name, body)
    }

    /// Advances one generation: seeds on the first call, breeds afterwards;
    /// evaluates candidates in parallel; records history and outputs.
    /// Returns what the step did (see [`StepOutcome`]); once the
    /// generation budget is exhausted the call is a no-op returning
    /// [`StepOutcome::Budget`]. Inspect the results through
    /// [`GestRun::population`], [`GestRun::best`], and
    /// [`GestRun::history`].
    ///
    /// # Errors
    ///
    /// Measurement/simulation errors; I/O errors when saving.
    pub fn step(&mut self) -> Result<StepOutcome, GestError> {
        if self.is_complete() {
            return Ok(StepOutcome::Budget);
        }
        let run_id = self.run_span.as_ref().and_then(SpanGuard::id);
        let generation_span = self.telemetry.span_under(
            run_id,
            "generation",
            &[("generation", u64::from(self.generation).into())],
        );
        let candidates = {
            let _breed_span = self.telemetry.span("breed");
            match &self.current {
                None => match &self.config.seed_population {
                    Some(path) => {
                        let saved = SavedPopulation::load(path)?;
                        let seeds = saved.seed_genes(&self.config.pool);
                        self.engine.seed_from(seeds)
                    }
                    None => self.engine.seed(),
                },
                Some(population) => self.engine.next_generation(population),
            }
        };
        let population = self.evaluate(self.generation, candidates, generation_span.id())?;
        self.history.record(&population);
        // Only *measured* fitness may become the run's best: a screened
        // candidate carries calibrated surrogate fitness, which steers
        // selection but must never be reported as an achieved result.
        if let Some(best) = self.measured_best(&population) {
            let replace = self.best.as_ref().is_none_or(|b| best.fitness > b.fitness);
            if replace {
                self.best = Some(best.clone());
            }
        }
        let report = health::report(self.generation, &population, &self.history);
        if self.telemetry.is_enabled() {
            if let Some(best) = population.best() {
                self.telemetry.point(
                    "generation",
                    &[
                        ("generation", u64::from(self.generation).into()),
                        ("best_fitness", best.fitness.into()),
                        ("mean_fitness", population.mean_fitness().into()),
                        (
                            "best_ever",
                            self.best
                                .as_ref()
                                .map_or(best.fitness, |b| b.fitness)
                                .into(),
                        ),
                    ],
                );
            }
            self.emit_health(&population, &report);
        }
        if let Some(writer) = &self.writer {
            let _save_span = self.telemetry.span("save");
            writer.save_generation(&population, &self.config.pool, &self.config.template)?;
        }
        self.generation += 1;
        self.current = Some(population);
        if self.writer.is_some() {
            if let Some(every) = self.config.checkpoint_every {
                if self.generation.is_multiple_of(every)
                    || self.generation == self.config.generations
                {
                    self.checkpoint_now()?;
                }
            }
        }
        drop(generation_span);
        Ok(if self.is_complete() {
            StepOutcome::Budget
        } else if report.plateaued {
            StepOutcome::Converged
        } else {
            StepOutcome::Progressed
        })
    }

    /// Emits the per-generation search-health snapshot (diversity, stall,
    /// plateau) plus live run/cache gauges, so a mid-run `/metrics` or
    /// `/status` scrape sees current values instead of only the
    /// end-of-run drain. Telemetry-only: nothing here is read back by the
    /// GA, so the evolved result is independent of whether it runs.
    fn emit_health(&self, population: &Population<Gene>, report: &health::HealthReport) {
        let mut fields: Vec<(&str, FieldValue)> = vec![
            ("generation", u64::from(report.generation).into()),
            ("diversity", report.diversity.into()),
            (
                "stall_generations",
                u64::from(report.stall_generations).into(),
            ),
            ("plateaued", u64::from(report.plateaued).into()),
            (
                "quarantined",
                self.telemetry.counter_value("eval.quarantined").into(),
            ),
            (
                "eval_retries",
                self.telemetry.counter_value("eval.retries").into(),
            ),
        ];
        if let Some(runtime) = self.surrogate_lock() {
            fields.push(("surrogate_gate_closed", u64::from(runtime.degraded).into()));
        }
        self.telemetry.point("health", &fields);
        self.telemetry
            .set_gauge("health.diversity", report.diversity);
        self.telemetry.set_gauge(
            "health.stall_generations",
            f64::from(report.stall_generations),
        );
        self.telemetry
            .set_gauge("health.plateaued", f64::from(u8::from(report.plateaued)));
        self.telemetry
            .set_gauge("run.generation", f64::from(self.generation));
        if let Some(best) = population.best() {
            self.telemetry.set_gauge(
                "run.best_fitness",
                self.best.as_ref().map_or(best.fitness, |b| b.fitness),
            );
            self.telemetry
                .set_gauge("run.mean_fitness", population.mean_fitness());
        }
        if let Some(stats) = self.eval_cache_stats() {
            let lookups = stats.hits + stats.misses;
            let hit_rate = if lookups == 0 {
                0.0
            } else {
                stats.hits as f64 / lookups as f64
            };
            self.telemetry.set_gauge("evalcache.hit_rate", hit_rate);
            self.telemetry
                .set_gauge("evalcache.bytes", stats.bytes as f64);
            self.telemetry
                .set_gauge("evalcache.entries", stats.entries as f64);
        }
    }

    /// Writes a checkpoint manifest for the current state into the run's
    /// output directory (atomically: tmp + rename). [`GestRun::step`]
    /// calls this every `checkpoint_every` generations and after the
    /// final one; manual step-drivers may also call it at any generation
    /// boundary.
    ///
    /// The matching population file is written by `step` *before* the
    /// manifest, so a crash between the two leaves the older manifest in
    /// charge and resume deterministically re-runs (and overwrites) the
    /// generations after it.
    ///
    /// # Errors
    ///
    /// [`GestError::Config`] when the run has no output directory; I/O
    /// errors writing the manifest.
    pub fn checkpoint_now(&self) -> Result<(), GestError> {
        let Some(writer) = &self.writer else {
            return Err(GestError::Config(
                "checkpointing requires an output directory (set output_dir)".into(),
            ));
        };
        let _span = self.telemetry.span_with(
            "checkpoint",
            &[("generation", u64::from(self.generation).into())],
        );
        let checkpoint = Checkpoint {
            config_fingerprint: self.config_fingerprint,
            generation: self.generation,
            engine: self.engine.export_state(),
            history: self.history.summaries().to_vec(),
            best: self.best.as_ref().map(|best| SavedIndividual {
                id: best.id,
                parents: best.parents,
                fitness: best.fitness,
                measurements: best.measurements.clone(),
                genes: best.genes.clone(),
            }),
        };
        // The manifest is the recovery anchor: retry a failed write once
        // (transient disk-full or EINTR), then propagate — a run that
        // cannot checkpoint anymore must fail loudly, not silently lose
        // its resume point.
        if let Err(first) = checkpoint.save_via(writer.dir(), &*self.write_fs) {
            self.telemetry.add_counter("checkpoint.write_failures", 1);
            eprintln!(
                "gest: checkpoint write failed ({first}); retrying once at \
                 generation {}",
                self.generation
            );
            checkpoint.save_via(writer.dir(), &*self.write_fs)?;
        }
        // The sidecar is an optimization, not run state: losing it costs
        // re-evaluation on resume, never correctness, so a failed write
        // only warns.
        if let Some(cache) = &self.eval_cache {
            if let Err(error) = cache.save_via(writer.dir(), &*self.write_fs) {
                self.telemetry.add_counter("evalcache.write_failures", 1);
                eprintln!(
                    "gest: eval-cache sidecar write failed ({error}); \
                     resume will start with a cold cache"
                );
            }
        }
        // The surrogate sidecar is resume-critical for byte-identity (a
        // resumed screened run must continue with the exact model state an
        // uninterrupted run would have), so it gets the same retry-once
        // then propagate treatment as the manifest.
        if let Some(runtime) = self.surrogate_lock() {
            let save = || {
                runtime.model.save_via(
                    writer.dir(),
                    &*self.write_fs,
                    self.config_fingerprint,
                    self.generation,
                )
            };
            if let Err(first) = save() {
                self.telemetry.add_counter("surrogate.write_failures", 1);
                eprintln!(
                    "gest: surrogate sidecar write failed ({first}); retrying once at \
                     generation {}",
                    self.generation
                );
                save()?;
            }
        }
        self.telemetry.add_counter("checkpoint.writes", 1);
        // Snapshot the aggregated metrics into the trace alongside the
        // checkpoint: a run that crashes later still leaves counter
        // totals and latency distributions as of its last checkpoint
        // (readers take the last record per name).
        self.telemetry.flush_metrics();
        Ok(())
    }

    /// Runs the remaining generations (all of them on a fresh run, the
    /// tail on a resumed one) and summarizes.
    ///
    /// # Errors
    ///
    /// Propagates the first error from any generation.
    pub fn run(mut self) -> Result<RunSummary, GestError> {
        // `Converged` is advisory (see [`StepOutcome`]): the blocking
        // driver steps through plateaus until the budget is spent, which
        // is what keeps its artifacts byte-identical to a scheduler that
        // does the same.
        while !self.step()?.is_terminal() {}
        self.finish();
        let best = self.best.expect("at least one generation ran");
        let best_program = {
            let body = gest_isa::InstructionPool::flatten(&best.genes);
            self.config.template.materialize("best", body)
        };
        Ok(RunSummary {
            best,
            best_program,
            history: self.history,
            generations: self.generation,
            metric_names: self.measurement.metrics().to_vec(),
        })
    }

    /// Closes the run-level span, flushes GA operator counters and
    /// run-level gauges, and finishes the telemetry pipeline (drains
    /// aggregated metrics to the sink). Idempotent; [`GestRun::run`] calls
    /// it automatically, manual [`GestRun::step`] drivers should call it
    /// once the search is over.
    pub fn finish(&mut self) {
        let Some(run_span) = self.run_span.take() else {
            return;
        };
        if self.telemetry.is_enabled() {
            let counts = self.engine.op_counts();
            self.telemetry
                .add_counter("ga.selections", counts.selections);
            self.telemetry
                .add_counter("ga.crossovers", counts.crossovers);
            self.telemetry
                .add_counter("ga.mutated_genes", counts.mutated_genes);
            self.telemetry
                .add_counter("ga.elite_copies", counts.elite_copies);
            self.telemetry
                .add_counter("ga.random_genes", counts.random_genes);
            self.telemetry
                .set_gauge("run.generations", f64::from(self.generation));
            if let Some(best) = &self.best {
                self.telemetry.set_gauge("run.best_fitness", best.fitness);
            }
            if let Some(stats) = self.eval_cache_stats() {
                self.telemetry.add_counter("evalcache.hits", stats.hits);
                self.telemetry.add_counter("evalcache.misses", stats.misses);
                self.telemetry
                    .add_counter("evalcache.inserts", stats.inserts);
                self.telemetry
                    .add_counter("evalcache.evictions", stats.evictions);
                self.telemetry
                    .set_gauge("evalcache.bytes", stats.bytes as f64);
                self.telemetry
                    .set_gauge("evalcache.entries", stats.entries as f64);
            }
        }
        drop(run_span);
        self.telemetry.finish();
    }

    /// Evaluates candidates in parallel across the backend's slots (the
    /// substrate analogue of the paper's per-individual measure step,
    /// which dominates runtime: "5 seconds per measurement … the runtime
    /// is approximately 7 hours").
    ///
    /// Candidates are pulled from a shared atomic cursor (work-stealing),
    /// but results land in per-candidate slots, so the population order —
    /// and therefore the search — is independent of slot scheduling.
    ///
    /// When the evaluation cache is on, same-generation duplicates are
    /// deduplicated in flight: only the first candidate of each distinct
    /// gene content is dispatched in the first wave; its duplicates run
    /// in a second wave, after the leader's result has reached the cache,
    /// and are served from it. Results are bit-identical either way
    /// (content-purity), so dedup only saves work, never changes it.
    fn evaluate(
        &self,
        generation: u32,
        candidates: Vec<Candidate<Gene>>,
        parent_span: Option<u64>,
    ) -> Result<Population<Gene>, GestError> {
        let (mut leaders, mut followers, leader_of) = self.split_duplicates(&candidates);
        // Surrogate screening happens here — coordinator-side, before any
        // wave is dispatched — so remote backends only ever receive the
        // candidates that survived, and the screening decision sequence is
        // a pure function of the checkpointed search state.
        let plan = self.surrogate_plan(generation, &candidates, &leaders, &leader_of);
        if let Some(plan) = &plan {
            if !plan.skipped_set.is_empty() {
                leaders.retain(|index| !plan.skipped_set.contains(index));
                followers.retain(|index| !plan.skipped_set.contains(index));
            }
        }
        let eval_span = self.telemetry.span_under(
            parent_span,
            "evaluate",
            &[
                ("generation", u64::from(generation).into()),
                ("candidates", candidates.len().into()),
                ("threads", self.backend.slots(candidates.len()).into()),
                ("backend", self.backend.name().into()),
                ("deduped", followers.len().into()),
            ],
        );
        let eval_id = eval_span.id();

        let results: Vec<EvalSlot> = candidates.iter().map(|_| OnceLock::new()).collect();
        if let Some(plan) = &plan {
            for &(index, fitness) in &plan.skipped {
                let candidate = &candidates[index];
                let prefilled = results[index].set(Ok(Evaluated {
                    id: candidate.id,
                    parents: candidate.parents,
                    genes: candidate.genes.clone(),
                    fitness,
                    // Screened candidates were never measured; NaN marks
                    // the metrics as absent (the same convention as
                    // quarantine) without inventing values.
                    measurements: vec![f64::NAN; self.measurement.metrics().len()],
                }));
                if prefilled.is_err() {
                    unreachable!("screened slots are filled before any wave runs");
                }
            }
        }
        self.evaluate_wave(generation, &candidates, &leaders, &results, eval_id);
        if !followers.is_empty() {
            self.telemetry
                .add_counter("eval.dedup_deferred", followers.len() as u64);
            self.evaluate_wave(generation, &candidates, &followers, &results, eval_id);
        }

        drop(eval_span);
        let mut individuals = Vec::with_capacity(candidates.len());
        for slot in results {
            match slot.into_inner().expect("every candidate was evaluated") {
                Ok(evaluated) => individuals.push(evaluated),
                Err(e) => return Err(e),
            }
        }
        if let Some(plan) = plan {
            self.surrogate_update(generation, &candidates, &individuals, plan);
        }
        Ok(Population {
            generation,
            individuals,
        })
    }

    /// Splits candidate indices into dedup leaders (first occurrence of
    /// each gene content) and followers (in-generation duplicates, served
    /// from the cache after their leader's wave), plus a `leader_of`
    /// mapping (`leader_of[i] == i` for leaders) that surrogate screening
    /// uses to keep a follower's fate consistent with its leader's.
    /// Without a cache there is nothing to serve followers from, so
    /// everything leads.
    fn split_duplicates(
        &self,
        candidates: &[Candidate<Gene>],
    ) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
        let mut leader_of: Vec<usize> = (0..candidates.len()).collect();
        if self.eval_cache.is_none() {
            return ((0..candidates.len()).collect(), Vec::new(), leader_of);
        }
        let mut seen: HashMap<u128, usize> = HashMap::with_capacity(candidates.len());
        let mut leaders = Vec::with_capacity(candidates.len());
        let mut followers = Vec::new();
        for (index, candidate) in candidates.iter().enumerate() {
            match seen.entry(genes_hash(&candidate.genes)) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(index);
                    leaders.push(index);
                }
                std::collections::hash_map::Entry::Occupied(slot) => {
                    leader_of[index] = *slot.get();
                    followers.push(index);
                }
            }
        }
        (leaders, followers, leader_of)
    }

    /// Plans this generation's surrogate screening: featurizes and ranks
    /// every candidate, then — when the confidence gate is open — excuses
    /// all cache-miss dedup leaders outside the predicted top-K and a
    /// seeded exploration quota (plus their duplicate followers) from
    /// simulation, assigning them calibrated surrogate fitness.
    ///
    /// Runs on the main thread before any wave. Everything it consumes —
    /// candidate order, model state, the exploration stream seeded by
    /// `(run seed, generation)` — is part of (or derived from) the
    /// checkpointed search state, so the plan is identical across thread
    /// counts, lane widths, and resume.
    fn surrogate_plan(
        &self,
        generation: u32,
        candidates: &[Candidate<Gene>],
        leaders: &[usize],
        leader_of: &[usize],
    ) -> Option<ScreenPlan> {
        let mut runtime = self.surrogate_lock()?;
        let runtime = &mut *runtime;
        let features: Vec<FeatureVec> = candidates
            .iter()
            .map(|candidate| featurize(&candidate.genes))
            .collect();
        let predictions: Vec<f64> = features
            .iter()
            .map(|feature| runtime.model.predict(feature))
            .collect();
        let mut plan = ScreenPlan {
            fitted: runtime.model.samples() > 0,
            gate_open: runtime.model.gate_open(runtime.min_samples),
            features,
            predictions,
            skipped: Vec::new(),
            skipped_set: HashSet::new(),
        };
        runtime.last_gate_open = plan.gate_open;
        runtime.degraded = !plan.gate_open && runtime.model.samples() >= runtime.min_samples;
        if runtime.degraded {
            self.telemetry.add_counter("surrogate.gate_closed", 1);
            if !runtime.warned_degraded {
                runtime.warned_degraded = true;
                eprintln!(
                    "gest: surrogate rank correlation stayed below {SPEARMAN_GATE} after \
                     warmup (generation {generation}); screening is disabled and every \
                     candidate is fully simulated until the model recovers"
                );
            }
        }
        if !plan.gate_open {
            return Some(plan);
        }
        // Candidates the cache would simulate for free are never worth a
        // prediction; screening only competes against real simulations.
        let pool: Vec<usize> = leaders
            .iter()
            .copied()
            .filter(|&index| match self.eval_key(&candidates[index]) {
                Some(key) => !self
                    .eval_cache
                    .as_ref()
                    .expect("eval_key implies a cache")
                    .peek(&key),
                None => true,
            })
            .collect();
        if pool.len() <= runtime.topk + runtime.explore {
            return Some(plan);
        }
        let mut ranked = pool.clone();
        ranked.sort_by(|&a, &b| {
            plan.predictions[b]
                .total_cmp(&plan.predictions[a])
                .then(a.cmp(&b))
        });
        let keep: HashSet<usize> = ranked[..runtime.topk].iter().copied().collect();
        // `pool` is index-ascending, so `rest` is too — the canonical
        // order the reservoir stream is defined over.
        let rest: Vec<usize> = pool
            .iter()
            .copied()
            .filter(|index| !keep.contains(index))
            .collect();
        let explored: HashSet<usize> = ExplorationSampler::new(self.config.seed, generation)
            .reservoir(&rest, runtime.explore)
            .into_iter()
            .collect();
        for &index in &rest {
            if explored.contains(&index) {
                continue;
            }
            plan.skipped
                .push((index, runtime.model.calibrated(plan.predictions[index])));
            plan.skipped_set.insert(index);
        }
        // A follower duplicates its leader's genes, so it shares the
        // leader's fate: screened leaders would leave their followers
        // with nothing to hit in the cache.
        for (index, &leader) in leader_of.iter().enumerate() {
            if leader != index && plan.skipped_set.contains(&leader) {
                plan.skipped
                    .push((index, runtime.model.calibrated(plan.predictions[index])));
                plan.skipped_set.insert(index);
            }
        }
        Some(plan)
    }

    /// Folds a completed generation back into the surrogate: records
    /// out-of-sample `(predicted, measured)` pairs, trains on every
    /// measured finite-fitness candidate (cache hits included — a hit is
    /// a real measurement), refits the weights once, and emits the
    /// screening telemetry. Main thread, canonical index order.
    fn surrogate_update(
        &self,
        generation: u32,
        candidates: &[Candidate<Gene>],
        individuals: &[Evaluated<Gene>],
        plan: ScreenPlan,
    ) {
        let Some(mut runtime) = self.surrogate_lock() else {
            return;
        };
        let runtime = &mut *runtime;
        runtime.screened_last.clear();
        let mut simulated = 0u64;
        for (index, evaluated) in individuals.iter().enumerate() {
            if plan.skipped_set.contains(&index) {
                runtime.screened_last.insert(evaluated.id);
                continue;
            }
            // Quarantined candidates carry -inf fitness and NaN
            // measurements; they are excluded from training.
            if !evaluated.fitness.is_finite() {
                continue;
            }
            if plan.fitted {
                runtime
                    .model
                    .record_pair(plan.predictions[index], evaluated.fitness);
            }
            runtime
                .model
                .observe(&plan.features[index], evaluated.fitness);
            simulated += 1;
        }
        runtime.model.fit();
        runtime.screened_total += plan.skipped.len() as u64;
        runtime.simulated_total += simulated;
        if self.telemetry.is_enabled() {
            let screen_rate = plan.skipped.len() as f64 / candidates.len().max(1) as f64;
            let spearman = runtime.model.spearman();
            let mut fields: Vec<(&str, FieldValue)> = vec![
                ("generation", u64::from(generation).into()),
                ("screened", (plan.skipped.len() as u64).into()),
                ("simulated", simulated.into()),
                ("gate", u64::from(plan.gate_open).into()),
                ("screen_rate", screen_rate.into()),
            ];
            if let Some(rho) = spearman {
                fields.push(("spearman", rho.into()));
            }
            self.telemetry.point("surrogate", &fields);
            self.telemetry
                .add_counter("surrogate.screened", plan.skipped.len() as u64);
            self.telemetry.add_counter("surrogate.simulated", simulated);
            self.telemetry
                .set_gauge("surrogate.screen_rate", screen_rate);
            self.telemetry
                .set_gauge("surrogate.gate_open", f64::from(u8::from(plan.gate_open)));
            if let Some(rho) = spearman {
                self.telemetry.set_gauge("surrogate.spearman", rho);
            }
        }
    }

    /// The best individual of a population among those that were actually
    /// measured this generation — identical to [`Population::best`] when
    /// screening is off or nothing was screened.
    fn measured_best<'pop>(
        &self,
        population: &'pop Population<Gene>,
    ) -> Option<&'pop Evaluated<Gene>> {
        match self.surrogate_lock() {
            Some(runtime) if !runtime.screened_last.is_empty() => population
                .individuals
                .iter()
                .filter(|evaluated| !runtime.screened_last.contains(&evaluated.id))
                .reduce(|best, x| if x.fitness > best.fitness { x } else { best }),
            _ => population.best(),
        }
    }

    /// Fans one wave of candidate positions out across the backend's
    /// slots: a shared cursor steals work, write-once slots keep result
    /// order deterministic.
    ///
    /// When the backend reports a lane width above one, each cursor claim
    /// takes a whole chunk and measures its cache misses through
    /// [`EvalBackend::measure_batch`]. Batching is wall-clock only: every
    /// lane's measurement is bit-identical to the single path and results
    /// land in the same write-once slots, so the search cannot observe
    /// the width. Per-attempt fault handling (watchdog threads, soft
    /// deadlines) needs one measurement per attempt, so any such policy
    /// pins the width back to one.
    fn evaluate_wave(
        &self,
        generation: u32,
        candidates: &[Candidate<Gene>],
        positions: &[usize],
        results: &[EvalSlot],
        eval_id: Option<u64>,
    ) {
        if positions.is_empty() {
            return;
        }
        let policy = self.config.fault_policy;
        let width = if policy.watchdog_ms.is_some() || policy.deadline_ms.is_some() {
            1
        } else {
            self.backend.lane_width().max(1)
        };
        let slots = self.backend.slots(positions.len().div_ceil(width)).max(1);
        let next = AtomicUsize::new(0);
        let next_ref = &next;
        std::thread::scope(|scope| {
            for slot in 0..slots {
                scope.spawn(move || loop {
                    let cursor = next_ref.fetch_add(width, Ordering::Relaxed);
                    if cursor >= positions.len() {
                        break;
                    }
                    let chunk = &positions[cursor..positions.len().min(cursor + width)];
                    if width == 1 {
                        let index = chunk[0];
                        let outcome =
                            self.evaluate_candidate(generation, &candidates[index], slot, eval_id);
                        if results[index].set(outcome).is_err() {
                            unreachable!("the cursor hands each slot to exactly one worker");
                        }
                    } else {
                        self.evaluate_chunk(generation, candidates, chunk, results, slot, eval_id);
                    }
                });
            }
        });
    }

    /// One slot-side evaluation: opens the per-candidate span (parented
    /// to the surrounding `evaluate` span, since the thread-local stack
    /// cannot see across threads), converts worker panics into
    /// [`GestError::Measurement`] (via [`catch_measure`]) so one bad
    /// measurement plug-in fails the run cleanly instead of aborting the
    /// process, applies the configured [`crate::FaultPolicy`] (deadline,
    /// bounded retries with deterministic backoff, quarantine), and
    /// records latency and per-worker utilization metrics.
    fn evaluate_candidate(
        &self,
        generation: u32,
        candidate: &Candidate<Gene>,
        worker: usize,
        parent_span: Option<u64>,
    ) -> Result<Evaluated<Gene>, GestError> {
        let span = self.telemetry.span_under(
            parent_span,
            "eval.candidate",
            &[
                ("candidate", candidate.id.into()),
                ("generation", u64::from(generation).into()),
                ("worker", worker.into()),
            ],
        );
        let policy = self.config.fault_policy;
        let started = Instant::now();
        let mut attempt: u32 = 0;
        let outcome = loop {
            attempt += 1;
            let attempt_started = Instant::now();
            let mut result = catch_measure(candidate.id, || {
                self.evaluate_one(generation, candidate, worker)
            });
            // Soft deadline: an over-budget value is treated as a failure
            // (the substrate cannot preempt an in-flight measurement).
            if result.is_ok() {
                let elapsed_ms = attempt_started.elapsed().as_millis();
                if policy.deadline_exceeded(elapsed_ms) {
                    result = Err(GestError::Measurement {
                        candidate: candidate.id,
                        message: format!(
                            "measurement took {elapsed_ms}ms, past the {}ms deadline",
                            policy.deadline_ms.unwrap_or(0)
                        ),
                    });
                }
            }
            match result {
                Ok(evaluated) => break Ok(evaluated),
                Err(error) => {
                    if attempt <= policy.max_retries {
                        self.telemetry.add_counter("eval.retries", 1);
                        std::thread::sleep(policy.backoff(attempt));
                        continue;
                    }
                    if policy.quarantine {
                        self.telemetry.add_counter("eval.quarantined", 1);
                        self.telemetry.point(
                            "quarantine",
                            &[
                                ("candidate", candidate.id.into()),
                                ("generation", u64::from(generation).into()),
                                ("attempts", u64::from(attempt).into()),
                                ("error", error.to_string().into()),
                            ],
                        );
                        break Ok(Evaluated {
                            id: candidate.id,
                            parents: candidate.parents,
                            genes: candidate.genes.clone(),
                            fitness: QUARANTINE_FITNESS,
                            measurements: vec![f64::NAN; self.measurement.metrics().len()],
                        });
                    }
                    break Err(error);
                }
            }
        };
        self.finish_candidate_metrics(started, worker, outcome.is_err());
        drop(span);
        outcome
    }

    /// Per-candidate closing metrics, shared by the single and chunked
    /// paths: evaluation latency, worker utilization, and failures.
    fn finish_candidate_metrics(&self, started: Instant, worker: usize, failed: bool) {
        if self.telemetry.is_enabled() {
            let elapsed_us = started.elapsed().as_secs_f64() * 1e6;
            self.telemetry
                .record("eval.latency_us", &latency_buckets(), elapsed_us);
            self.telemetry
                .add_counter(&format!("eval.worker.{worker}.candidates"), 1);
            if failed {
                self.telemetry.add_counter("eval.failures", 1);
            }
        }
    }

    /// Evaluates one claimed chunk: cache hits complete immediately, the
    /// misses go to the backend as a single [`EvalBackend::measure_batch`]
    /// call, and any lane that fails it — error, panic, or a non-finite
    /// value — falls back to [`GestRun::evaluate_candidate`], where the
    /// fault policy retries or quarantines that lane in isolation (the
    /// failed batch attempt does not consume its retry budget). Only
    /// reached when the backend reports `lane_width() > 1`.
    fn evaluate_chunk(
        &self,
        generation: u32,
        candidates: &[Candidate<Gene>],
        chunk: &[usize],
        results: &[EvalSlot],
        worker: usize,
        parent_span: Option<u64>,
    ) {
        let span_fields = |candidate: &Candidate<Gene>| {
            [
                ("candidate", candidate.id.into()),
                ("generation", u64::from(generation).into()),
                ("worker", worker.into()),
            ]
        };
        let mut pending: Vec<(usize, Option<EvalKey>)> = Vec::with_capacity(chunk.len());
        for &index in chunk {
            let candidate = &candidates[index];
            let started = Instant::now();
            let key = self.eval_key(candidate);
            if let Some(hit) = self.cached_eval(candidate, key.as_ref()) {
                drop(self.telemetry.span_under(
                    parent_span,
                    "eval.candidate",
                    &span_fields(candidate),
                ));
                self.finish_candidate_metrics(started, worker, false);
                if results[index].set(Ok(hit)).is_err() {
                    unreachable!("the cursor hands each chunk to exactly one worker");
                }
            } else {
                pending.push((index, key));
            }
        }
        if pending.is_empty() {
            return;
        }

        // One span per in-flight lane; they deliberately overlap, since
        // the lanes genuinely run together.
        let batch_started = Instant::now();
        let spans: Vec<SpanGuard> = pending
            .iter()
            .map(|&(index, _)| {
                self.telemetry.span_under(
                    parent_span,
                    "eval.candidate",
                    &span_fields(&candidates[index]),
                )
            })
            .collect();
        let requests: Vec<EvalRequest<'_>> = pending
            .iter()
            .map(|&(index, _)| EvalRequest {
                generation,
                candidate_id: candidates[index].id,
                genes: &candidates[index].genes,
            })
            .collect();
        let ids: Vec<u64> = requests.iter().map(|r| r.candidate_id).collect();
        let mut lanes = catch_measure_batch(&ids, || self.backend.measure_batch(worker, &requests));
        if lanes.len() != requests.len() {
            // A malformed backend reply fails the whole chunk into the
            // single-candidate fallback rather than misaligning lanes.
            let got = lanes.len();
            lanes = ids
                .iter()
                .map(|&candidate| {
                    Err(GestError::Measurement {
                        candidate,
                        message: format!(
                            "measure_batch returned {got} results for {} requests",
                            requests.len()
                        ),
                    })
                })
                .collect();
        }
        for (((index, key), lane), span) in pending.into_iter().zip(lanes).zip(spans) {
            let candidate = &candidates[index];
            let completed = lane.and_then(|(measurements, detail)| {
                self.complete_measured(candidate, key, measurements, detail)
            });
            let outcome = match completed {
                Ok(evaluated) => {
                    drop(span);
                    self.finish_candidate_metrics(batch_started, worker, false);
                    Ok(evaluated)
                }
                Err(_) => {
                    drop(span);
                    self.evaluate_candidate(generation, candidate, worker, parent_span)
                }
            };
            if results[index].set(outcome).is_err() {
                unreachable!("the cursor hands each chunk to exactly one worker");
            }
        }
    }

    fn evaluate_one(
        &self,
        generation: u32,
        candidate: &Candidate<Gene>,
        slot: usize,
    ) -> Result<Evaluated<Gene>, GestError> {
        let key = self.eval_key(candidate);
        if let Some(hit) = self.cached_eval(candidate, key.as_ref()) {
            return Ok(hit);
        }
        let request = EvalRequest {
            generation,
            candidate_id: candidate.id,
            genes: &candidate.genes,
        };
        let (measurements, detail) = match self.config.fault_policy.watchdog_ms {
            Some(watchdog_ms) => watchdog_measure(&self.backend, slot, &request, watchdog_ms)?,
            None => self.backend.measure(slot, &request)?,
        };
        self.complete_measured(candidate, key, measurements, detail)
    }

    /// The evaluation cache key for a candidate, when caching is on.
    /// Content-addressed: keyed by what the candidate *is* (canonical
    /// gene bytes), not which generation/id it carries, so elites and
    /// re-bred duplicates skip simulation entirely.
    fn eval_key(&self, candidate: &Candidate<Gene>) -> Option<EvalKey> {
        self.eval_cache.as_ref().map(|_| EvalKey {
            config_fp: self.config_fingerprint,
            genes_hash: genes_hash(&candidate.genes),
        })
    }

    /// Cache-probe half of an evaluation: on a hit, replays the cached
    /// simulator detail into telemetry and recomputes fitness (it can
    /// depend on gene structure and the pool, which the key does not
    /// cover).
    fn cached_eval(
        &self,
        candidate: &Candidate<Gene>,
        key: Option<&EvalKey>,
    ) -> Option<Evaluated<Gene>> {
        let (cache, key) = match (&self.eval_cache, key) {
            (Some(cache), Some(key)) => (cache, key),
            _ => return None,
        };
        let cached = cache.get(key)?;
        if self.telemetry.is_enabled() {
            if let Some(kv) = &cached.detail_kv {
                let buckets = sim_buckets();
                for &(stat, value) in kv {
                    self.telemetry
                        .record(&format!("sim.{stat}"), &buckets, value);
                }
            }
        }
        let fitness = self.fitness.fitness(&FitnessContext {
            measurements: &cached.measurements,
            genes: &candidate.genes,
            pool: &self.config.pool,
        });
        Some(Evaluated {
            id: candidate.id,
            parents: candidate.parents,
            genes: candidate.genes.clone(),
            fitness,
            measurements: cached.measurements,
        })
    }

    /// Completion half of an evaluation: validates, exports telemetry
    /// detail, caches, and scores a freshly measured candidate — the same
    /// code whether the measurement came from a single call or one lane
    /// of a batch.
    fn complete_measured(
        &self,
        candidate: &Candidate<Gene>,
        key: Option<EvalKey>,
        measurements: Vec<f64>,
        detail: Option<gest_sim::RunResult>,
    ) -> Result<Evaluated<Gene>, GestError> {
        // Reject NaN/Inf before the result can reach the cache or a
        // fitness function: non-finite measurements poison comparisons
        // silently, so they count as a measurement failure (and go
        // through the same retry/quarantine path as any other).
        if let Some(bad) = measurements.iter().find(|value| !value.is_finite()) {
            return Err(GestError::Measurement {
                candidate: candidate.id,
                message: format!("backend returned a non-finite measurement ({bad})"),
            });
        }
        if self.telemetry.is_enabled() {
            if let Some(result) = &detail {
                let buckets = sim_buckets();
                for (key, value) in result.metric_kv() {
                    self.telemetry
                        .record(&format!("sim.{key}"), &buckets, value);
                }
            }
        }
        if let (Some(cache), Some(key)) = (&self.eval_cache, key) {
            cache.insert(
                key,
                CachedEval {
                    measurements: measurements.clone(),
                    detail_kv: detail.as_ref().map(|result| result.metric_kv()),
                },
            );
        }
        let fitness = self.fitness.fitness(&FitnessContext {
            measurements: &measurements,
            genes: &candidate.genes,
            pool: &self.config.pool,
        });
        Ok(Evaluated {
            id: candidate.id,
            parents: candidate.parents,
            genes: candidate.genes.clone(),
            fitness,
            measurements,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GestConfig;

    fn tiny_config(machine: &str, measurement: &str) -> GestConfig {
        GestConfig::builder(machine)
            .measurement(measurement)
            .population_size(6)
            .individual_size(8)
            .generations(3)
            .seed(11)
            .build()
            .unwrap()
    }

    fn build_run(config: GestConfig) -> GestRun {
        GestRun::builder().config(config).build().unwrap()
    }

    #[test]
    fn run_improves_or_holds_power_fitness() {
        let summary = build_run(tiny_config("cortex-a15", "power")).run().unwrap();
        assert_eq!(summary.generations, 3);
        let series = summary.history.best_series();
        assert_eq!(series.len(), 3);
        // Elitism: monotone non-decreasing best fitness.
        for window in series.windows(2) {
            assert!(window[1] >= window[0] - 1e-12, "{series:?}");
        }
        assert!(summary.best.fitness > 0.0);
        assert_eq!(summary.metric_names[0], "avg_power_w");
        assert_eq!(summary.best_breakdown().iter().sum::<usize>(), 8);
    }

    #[test]
    fn runs_are_reproducible() {
        let a = build_run(tiny_config("cortex-a7", "power")).run().unwrap();
        let b = build_run(tiny_config("cortex-a7", "power")).run().unwrap();
        assert_eq!(a.best.genes, b.best.genes);
        assert_eq!(a.best.fitness, b.best.fitness);
    }

    #[test]
    fn lane_widths_produce_identical_searches() {
        let narrow = build_run(tiny_config("cortex-a15", "power")).run().unwrap();

        let mut wide_cfg = tiny_config("cortex-a15", "power");
        wide_cfg.lane_width = 4;
        let wide = build_run(wide_cfg).run().unwrap();
        assert_eq!(wide.best.genes, narrow.best.genes);
        assert_eq!(wide.best.fitness, narrow.best.fitness);
        assert_eq!(wide.history.best_series(), narrow.history.best_series());

        // Without the cache every candidate rides a batch lane; the
        // search still cannot tell.
        let mut uncached_cfg = tiny_config("cortex-a15", "power");
        uncached_cfg.eval_cache = false;
        uncached_cfg.lane_width = 8;
        let uncached = build_run(uncached_cfg).run().unwrap();
        assert_eq!(uncached.best.genes, narrow.best.genes);
        assert_eq!(uncached.best.fitness, narrow.best.fitness);
    }

    #[test]
    fn single_thread_matches_parallel() {
        let mut parallel_cfg = tiny_config("cortex-a7", "ipc");
        parallel_cfg.threads = 4;
        let mut serial_cfg = tiny_config("cortex-a7", "ipc");
        serial_cfg.threads = 1;
        let a = build_run(parallel_cfg).run().unwrap();
        let b = build_run(serial_cfg).run().unwrap();
        assert_eq!(a.best.genes, b.best.genes);
    }

    #[test]
    fn voltage_noise_run_on_athlon() {
        let summary = build_run(tiny_config("athlon-x4", "voltage_noise"))
            .run()
            .unwrap();
        assert!(summary.best.fitness > 0.0, "p2p noise should be positive");
        assert_eq!(summary.metric_names[0], "peak_to_peak_v");
    }

    #[test]
    fn step_api_exposes_populations() {
        let mut run = build_run(tiny_config("cortex-a15", "power"));
        assert!(run.population().is_none());
        assert_eq!(run.generation(), 0);
        assert!(!run.is_complete());
        assert!(!run.step().unwrap().is_terminal());
        let population = run.population().unwrap();
        assert_eq!(population.generation, 0);
        assert_eq!(population.len(), 6);
        assert!(!run.step().unwrap().is_terminal());
        assert_eq!(run.population().unwrap().generation, 1);
        assert_eq!(run.history().summaries().len(), 2);
        assert_eq!(run.generation(), 2);
        assert_eq!(run.target_generations(), 3);
        assert!(run.best().is_some());
    }

    #[test]
    fn step_outcomes_form_a_resumable_state_machine() {
        // 3 configured generations: two non-terminal steps, then the
        // budget-exhausting one, then no-ops forever after — with no
        // state perturbed by the extra calls.
        let mut run = build_run(tiny_config("cortex-a15", "power"));
        assert!(!run.step().unwrap().is_terminal());
        assert!(!run.step().unwrap().is_terminal());
        assert_eq!(run.step().unwrap(), StepOutcome::Budget);
        assert!(run.is_complete());
        let best = run.best().unwrap().clone();
        assert_eq!(run.step().unwrap(), StepOutcome::Budget);
        assert_eq!(run.generation(), 3);
        assert_eq!(run.history().summaries().len(), 3);
        assert_eq!(
            run.best().unwrap().fitness.to_bits(),
            best.fitness.to_bits()
        );

        // Step-driven and blocking-loop drivers agree bit for bit.
        let stepped_best = run.best().unwrap().clone();
        run.finish();
        let blocking = build_run(tiny_config("cortex-a15", "power")).run().unwrap();
        assert_eq!(blocking.best.genes, stepped_best.genes);
        assert_eq!(
            blocking.best.fitness.to_bits(),
            stepped_best.fitness.to_bits()
        );
    }

    #[test]
    fn builder_rejects_ambiguous_and_empty_inputs() {
        let err = GestRun::builder().build().unwrap_err();
        assert!(err.to_string().contains("required"), "{err}");
        let err = GestRun::builder()
            .config(tiny_config("cortex-a7", "power"))
            .resume_from("/nonexistent")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn builder_registry_and_telemetry_hooks_are_used() {
        use crate::measurement::PowerMeasurement;
        use gest_telemetry::{Event, MemorySink};

        // A registry where "power" is rerouted: proof the builder asks the
        // registry, not the legacy hard-coded match.
        let registry = Registry::empty().measurement("power", |machine, run| {
            Ok(Arc::new(PowerMeasurement::new(machine, run)))
        });
        let err = GestRun::builder()
            .config(tiny_config("cortex-a7", "power"))
            .registry(registry.clone())
            .build()
            .unwrap_err();
        assert!(
            err.to_string().contains("unknown fitness"),
            "empty fitness table must be consulted: {err}"
        );

        let sink = Arc::new(MemorySink::default());
        let summary = GestRun::builder()
            .config(tiny_config("cortex-a7", "power"))
            .registry(Registry::default())
            .telemetry(Telemetry::new(sink.clone()))
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(summary.best.fitness > 0.0);
        assert!(
            sink.events()
                .iter()
                .any(|e| matches!(e, Event::SpanStart { name, .. } if name == "run")),
            "builder-supplied telemetry overrides the config's disabled handle"
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructors_still_work() {
        let summary = GestRun::new(tiny_config("cortex-a7", "power"))
            .unwrap()
            .run()
            .unwrap();
        let via_builder = build_run(tiny_config("cortex-a7", "power")).run().unwrap();
        assert_eq!(summary.best.genes, via_builder.best.genes);
    }

    /// Panics on one specific candidate, like a measurement plug-in with a
    /// latent bug.
    #[derive(Debug)]
    struct Panicky;
    impl crate::measurement::Measurement for Panicky {
        fn name(&self) -> &'static str {
            "panicky"
        }
        fn metrics(&self) -> &'static [&'static str] {
            &["value"]
        }
        fn measure(&self, program: &Program) -> Result<Vec<f64>, GestError> {
            assert!(program.name != "0_2", "instrument exploded");
            Ok(vec![1.0])
        }
    }

    #[test]
    fn worker_panic_surfaces_as_measurement_error_under_fail_fast() {
        let mut config = tiny_config("cortex-a15", "power");
        config.fault_policy = crate::FaultPolicy::fail_fast();
        let err = GestRun::builder()
            .config(config)
            .measurement(Arc::new(Panicky))
            .build()
            .unwrap()
            .run()
            .unwrap_err();
        match err {
            GestError::Measurement { candidate, message } => {
                assert_eq!(candidate, 2);
                assert!(message.contains("instrument exploded"), "{message}");
            }
            other => panic!("expected a measurement error, got: {other}"),
        }
    }

    #[test]
    fn default_policy_quarantines_the_crashing_candidate() {
        use gest_telemetry::{Event, MemorySink};

        let sink = Arc::new(MemorySink::default());
        let mut config = tiny_config("cortex-a15", "power");
        config.telemetry = Telemetry::new(sink.clone());
        let summary = GestRun::builder()
            .config(config)
            .measurement(Arc::new(Panicky))
            .build()
            .unwrap()
            .run()
            .unwrap();
        // The run completes; the poisoned candidate never wins.
        assert_eq!(summary.generations, 3);
        assert!(summary.best.fitness.is_finite());
        assert_ne!(summary.best.id, 2);

        let counter = |wanted: &str| {
            sink.events().iter().find_map(|e| match e {
                Event::Counter { name, value } if name == wanted => Some(*value),
                _ => None,
            })
        };
        assert_eq!(
            counter("eval.retries"),
            Some(1),
            "default policy retries once before quarantining"
        );
        assert_eq!(counter("eval.quarantined"), Some(1));
        assert_eq!(
            counter("eval.failures"),
            None,
            "a quarantined candidate is not a run failure"
        );
    }

    #[test]
    fn deadline_overruns_quarantine_with_a_clear_message() {
        use std::time::Duration;

        /// Sleeps past the configured deadline for one candidate.
        #[derive(Debug)]
        struct Slow;
        impl crate::measurement::Measurement for Slow {
            fn name(&self) -> &'static str {
                "slow"
            }
            fn metrics(&self) -> &'static [&'static str] {
                &["value"]
            }
            fn measure(&self, program: &Program) -> Result<Vec<f64>, GestError> {
                if program.name == "0_1" {
                    std::thread::sleep(Duration::from_millis(30));
                }
                Ok(vec![1.0])
            }
        }

        let mut config = tiny_config("cortex-a7", "power");
        config.threads = 1;
        config.fault_policy = crate::FaultPolicy {
            max_retries: 0,
            backoff_base_ms: 0,
            deadline_ms: Some(5),
            watchdog_ms: None,
            quarantine: false,
        };
        let err = GestRun::builder()
            .config(config)
            .measurement(Arc::new(Slow))
            .build()
            .unwrap()
            .run()
            .unwrap_err();
        match err {
            GestError::Measurement { candidate, message } => {
                assert_eq!(candidate, 1);
                assert!(message.contains("deadline"), "{message}");
            }
            other => panic!("expected a deadline error, got: {other}"),
        }
    }

    #[test]
    fn traced_run_emits_spans_metrics_and_stays_deterministic() {
        use gest_telemetry::{Event, MemorySink};

        let sink = Arc::new(MemorySink::default());
        let mut config = tiny_config("cortex-a7", "power");
        config.telemetry = Telemetry::new(sink.clone());
        let traced = build_run(config).run().unwrap();

        // Telemetry observes the search without perturbing it.
        let plain = build_run(tiny_config("cortex-a7", "power")).run().unwrap();
        assert_eq!(traced.best.genes, plain.best.genes);
        assert_eq!(traced.best.fitness, plain.best.fitness);

        let events = sink.events();
        let span_starts = |name: &str| {
            events
                .iter()
                .filter(|e| matches!(e, Event::SpanStart { name: n, .. } if n == name))
                .count()
        };
        assert_eq!(span_starts("run"), 1);
        assert_eq!(span_starts("generation"), 3);
        assert_eq!(span_starts("breed"), 3);
        assert_eq!(span_starts("evaluate"), 3);
        assert_eq!(
            span_starts("eval.candidate"),
            18,
            "6 candidates x 3 generations"
        );
        let span_ends = events
            .iter()
            .filter(|e| matches!(e, Event::SpanEnd { .. }))
            .count();
        let starts = events
            .iter()
            .filter(|e| matches!(e, Event::SpanStart { .. }))
            .count();
        assert_eq!(span_ends, starts, "every span closes");

        let points = events
            .iter()
            .filter(|e| matches!(e, Event::Point { name, .. } if name == "generation"))
            .count();
        assert_eq!(points, 3);

        let counter = |wanted: &str| {
            events.iter().find_map(|e| match e {
                Event::Counter { name, value } if name == wanted => Some(*value),
                _ => None,
            })
        };
        assert_eq!(
            counter("ga.random_genes"),
            Some(6 * 8),
            "seeding draws fresh genes"
        );
        assert!(counter("ga.selections").unwrap() > 0);
        assert!(counter("ga.crossovers").unwrap() > 0);
        assert!(
            counter("ga.elite_copies").unwrap() >= 2,
            "two bred generations"
        );
        let worker_total: u64 = events
            .iter()
            .filter_map(|e| match e {
                Event::Counter { name, value }
                    if name.starts_with("eval.worker.") && name.ends_with(".candidates") =>
                {
                    Some(*value)
                }
                _ => None,
            })
            .sum();
        assert_eq!(
            worker_total, 18,
            "thread-utilization counters cover every candidate"
        );

        let histogram = |wanted: &str| {
            events.iter().find_map(|e| match e {
                Event::Histogram { name, snapshot } if name == wanted => Some(snapshot.clone()),
                _ => None,
            })
        };
        assert_eq!(histogram("eval.latency_us").unwrap().count, 18);
        assert_eq!(
            histogram("sim.ipc").unwrap().count,
            18,
            "simulator stats become metrics"
        );

        let gauge = |wanted: &str| {
            events.iter().find_map(|e| match e {
                Event::Gauge { name, value } if name == wanted => Some(*value),
                _ => None,
            })
        };
        assert_eq!(gauge("run.generations"), Some(3.0));
        assert_eq!(gauge("run.best_fitness"), Some(traced.best.fitness));
    }

    #[test]
    fn eval_cache_hits_on_elites_without_changing_the_search() {
        // Cache on (the default): elites re-enter later generations with
        // identical genes and must be served from the cache.
        let mut run = build_run(tiny_config("cortex-a15", "power"));
        while !run.is_complete() {
            run.step().unwrap();
        }
        let stats = run.eval_cache_stats().expect("cache is on by default");
        assert!(stats.hits >= 2, "elite re-evaluations must hit: {stats:?}");
        assert_eq!(stats.hits + stats.misses, 18, "6 candidates x 3 gens");
        assert_eq!(stats.inserts, stats.misses);
        assert!(stats.entries > 0 && stats.bytes > 0);
        run.finish();

        // The search result is bit-identical with the cache off.
        let on = build_run(tiny_config("cortex-a15", "power")).run().unwrap();
        let off = GestRun::builder()
            .config(tiny_config("cortex-a15", "power"))
            .eval_cache(false)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(on.best.genes, off.best.genes);
        assert_eq!(on.best.fitness.to_bits(), off.best.fitness.to_bits());
        assert_eq!(
            on.best
                .measurements
                .iter()
                .map(|m| m.to_bits())
                .collect::<Vec<_>>(),
            off.best
                .measurements
                .iter()
                .map(|m| m.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn in_flight_dedup_defers_duplicates_to_the_cache() {
        let gene = |source: &str| gest_isa::Gene {
            def_index: 0,
            instrs: gest_isa::asm::parse_block(source).unwrap(),
        };
        let candidate = |id: u64, genes: Vec<gest_isa::Gene>| Candidate {
            id,
            parents: (None, None),
            genes,
        };
        // Candidates 2 and 3 duplicate the gene content of 0 and 1.
        let candidates = vec![
            candidate(0, vec![gene("ADD x1, x2, x3")]),
            candidate(1, vec![gene("ADD x1, x2, x4")]),
            candidate(2, vec![gene("ADD x1, x2, x3")]),
            candidate(3, vec![gene("ADD x1, x2, x4")]),
        ];

        let run = build_run(tiny_config("cortex-a7", "power"));
        let (leaders, followers, leader_of) = run.split_duplicates(&candidates);
        assert_eq!(leaders, vec![0, 1]);
        assert_eq!(followers, vec![2, 3]);
        assert_eq!(leader_of, vec![0, 1, 0, 1]);

        let population = run.evaluate(0, candidates.clone(), None).unwrap();
        let stats = run.eval_cache_stats().unwrap();
        assert_eq!(stats.misses, 2, "one simulation per distinct content");
        assert_eq!(stats.hits, 2, "followers are served from the cache");
        assert_eq!(
            population.individuals[0].measurements[0].to_bits(),
            population.individuals[2].measurements[0].to_bits(),
            "dedup hands duplicates bit-identical measurements"
        );

        // With the cache off there is nothing to defer to: all lead.
        let uncached = GestRun::builder()
            .config(tiny_config("cortex-a7", "power"))
            .eval_cache(false)
            .build()
            .unwrap();
        let (leaders, followers, leader_of) = uncached.split_duplicates(&candidates);
        assert_eq!(leaders.len(), 4);
        assert!(followers.is_empty());
        assert_eq!(leader_of, vec![0, 1, 2, 3], "without a cache all lead");
        let plain = uncached.evaluate(0, candidates, None).unwrap();
        assert_eq!(
            plain.individuals[2].measurements[0].to_bits(),
            population.individuals[2].measurements[0].to_bits(),
            "dedup never changes results"
        );
    }

    #[test]
    fn eval_cache_disabled_for_impure_measurements_and_by_flag() {
        let run = GestRun::builder()
            .config(tiny_config("cortex-a7", "power"))
            .eval_cache(false)
            .build()
            .unwrap();
        assert!(run.eval_cache_stats().is_none(), "--no-eval-cache");

        // A custom measurement without content_pure() stays uncached even
        // though caching is on: its results may depend on program naming.
        let run = GestRun::builder()
            .config(tiny_config("cortex-a7", "power"))
            .measurement(Arc::new(Panicky))
            .build()
            .unwrap();
        assert!(run.eval_cache_stats().is_none(), "impure measurement");
    }

    #[test]
    fn eval_cache_counters_flow_into_telemetry() {
        use gest_telemetry::{Event, MemorySink};

        let sink = Arc::new(MemorySink::default());
        let mut config = tiny_config("cortex-a7", "power");
        config.telemetry = Telemetry::new(sink.clone());
        build_run(config).run().unwrap();
        let events = sink.events();
        let counter = |wanted: &str| {
            events.iter().find_map(|e| match e {
                Event::Counter { name, value } if name == wanted => Some(*value),
                _ => None,
            })
        };
        let hits = counter("evalcache.hits").unwrap();
        let misses = counter("evalcache.misses").unwrap();
        assert!(hits >= 2, "elite re-evaluations hit");
        assert_eq!(hits + misses, 18);
        assert_eq!(counter("evalcache.inserts"), Some(misses));
        let gauge = |wanted: &str| {
            events.iter().find_map(|e| match e {
                Event::Gauge { name, value } if name == wanted => Some(*value),
                _ => None,
            })
        };
        assert!(gauge("evalcache.entries").unwrap() > 0.0);
        assert!(gauge("evalcache.bytes").unwrap() > 0.0);
    }

    #[test]
    fn output_dir_receives_files_and_seeds_new_run() {
        let dir = std::env::temp_dir().join(format!("gest_runner_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = tiny_config("cortex-a15", "power");
        config.output_dir = Some(dir.clone());
        let summary = build_run(config).run().unwrap();
        let files = OutputWriter::population_files(&dir).unwrap();
        assert_eq!(files.len(), 3, "one population file per generation");

        // Seed a new run from the last population: its seed generation
        // must already contain the old best fitness (elite genes carried).
        let mut seeded_cfg = tiny_config("cortex-a15", "power");
        seeded_cfg.seed_population = Some(files.last().unwrap().clone());
        let mut seeded = build_run(seeded_cfg);
        seeded.step().unwrap();
        let first = seeded.population().unwrap();
        assert!(
            first.best().unwrap().fitness >= summary.best.fitness * 0.99,
            "seeded run should start near the previous best"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
