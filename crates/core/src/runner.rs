//! The run driver: coordinates the GA engine, measurement, fitness, and
//! outputs across generations (the paper's Figure 2 loop).

use crate::config::GestConfig;
use crate::error::GestError;
use crate::fitness::{fitness_by_name, Fitness, FitnessContext};
use crate::genetics::PoolGenetics;
use crate::measurement::{measurement_by_name, Measurement};
use crate::output::{OutputWriter, SavedPopulation};
use gest_ga::{Candidate, Evaluated, GaEngine, History, Population};
use gest_isa::{Gene, Program};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Final outcome of a GeST search.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// The fittest individual found across all generations.
    pub best: Evaluated<Gene>,
    /// The program the best individual materializes to.
    pub best_program: Program,
    /// Per-generation convergence history.
    pub history: History,
    /// Number of generations evaluated (including the seed generation).
    pub generations: u32,
    /// Metric names of the measurement used.
    pub metric_names: Vec<&'static str>,
}

impl RunSummary {
    /// Instruction-class breakdown of the best individual, in
    /// [`gest_isa::InstrClass::ALL`] order (the paper's Table III/IV rows).
    pub fn best_breakdown(&self) -> [usize; 6] {
        gest_isa::InstructionPool::class_breakdown(&self.best.genes)
    }

    /// Unique instruction definitions used by the best individual (the
    /// paper's simplicity metric).
    pub fn best_unique_defs(&self) -> usize {
        gest_isa::InstructionPool::unique_defs(&self.best.genes)
    }
}

/// A configured GeST search.
///
/// Use [`GestRun::run`] for the whole search, or [`GestRun::step`] to
/// drive it generation by generation (e.g. for live plotting).
#[derive(Debug)]
pub struct GestRun {
    config: GestConfig,
    engine: GaEngine<PoolGenetics>,
    measurement: Arc<dyn Measurement>,
    fitness: Arc<dyn Fitness>,
    history: History,
    writer: Option<OutputWriter>,
    current: Option<Population<Gene>>,
    best: Option<Evaluated<Gene>>,
    generation: u32,
}

impl GestRun {
    /// Builds the run: resolves the measurement and fitness plug-ins by
    /// name, prepares the GA engine, and opens the output directory when
    /// configured.
    ///
    /// # Errors
    ///
    /// Configuration errors for unknown plug-in names; I/O errors opening
    /// the output directory.
    pub fn new(config: GestConfig) -> Result<GestRun, GestError> {
        let measurement = measurement_by_name(
            &config.measurement_name,
            config.machine.clone(),
            config.run_config,
        )?;
        GestRun::with_measurement(config, measurement)
    }

    /// Like [`GestRun::new`] but with an explicit measurement instance —
    /// the programmatic equivalent of dropping a custom measurement class
    /// next to the framework (paper §III.C), e.g. a
    /// [`crate::NoisyMeasurement`] wrapper.
    ///
    /// # Errors
    ///
    /// Same as [`GestRun::new`].
    pub fn with_measurement(
        config: GestConfig,
        measurement: Arc<dyn Measurement>,
    ) -> Result<GestRun, GestError> {
        // Equation-1 parameters: idle temperature = steady state under
        // static power alone; max = TJMAX (overridable via
        // `fitness_override`).
        let idle_c = config.machine.thermal.steady_state_c(config.machine.energy.static_w);
        let fitness = match &config.fitness_override {
            Some(custom) => Arc::clone(custom),
            None => {
                fitness_by_name(&config.fitness_name, idle_c, config.machine.thermal.tjmax_c)?
            }
        };
        let genetics = PoolGenetics::new(Arc::clone(&config.pool))
            .with_whole_instruction_prob(config.whole_instruction_mutation_prob);
        let engine = GaEngine::new(config.ga, genetics, config.seed);
        let writer = match &config.output_dir {
            Some(dir) => Some(OutputWriter::new(dir, &config, &config.template)?),
            None => None,
        };
        Ok(GestRun {
            config,
            engine,
            measurement,
            fitness,
            history: History::new(),
            writer,
            current: None,
            best: None,
            generation: 0,
        })
    }

    /// The convergence history so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The most recently evaluated population.
    pub fn population(&self) -> Option<&Population<Gene>> {
        self.current.as_ref()
    }

    /// Materializes an individual's genes into a runnable program.
    pub fn materialize(&self, name: &str, genes: &[Gene]) -> Program {
        let body = gest_isa::InstructionPool::flatten(genes);
        self.config.template.materialize(name, body)
    }

    /// Advances one generation: seeds on the first call, breeds afterwards;
    /// evaluates candidates in parallel; records history and outputs.
    ///
    /// # Errors
    ///
    /// Measurement/simulation errors; I/O errors when saving.
    pub fn step(&mut self) -> Result<&Population<Gene>, GestError> {
        let candidates = match &self.current {
            None => match &self.config.seed_population {
                Some(path) => {
                    let saved = SavedPopulation::load(path)?;
                    let seeds = saved.seed_genes(&self.config.pool);
                    self.engine.seed_from(seeds)
                }
                None => self.engine.seed(),
            },
            Some(population) => self.engine.next_generation(population),
        };
        let population = self.evaluate(self.generation, candidates)?;
        self.history.record(&population);
        if let Some(best) = population.best() {
            let replace = self.best.as_ref().is_none_or(|b| best.fitness > b.fitness);
            if replace {
                self.best = Some(best.clone());
            }
        }
        if let Some(writer) = &self.writer {
            writer.save_generation(&population, &self.config.pool, &self.config.template)?;
        }
        self.generation += 1;
        self.current = Some(population);
        Ok(self.current.as_ref().expect("just assigned"))
    }

    /// Runs all configured generations and summarizes.
    ///
    /// # Errors
    ///
    /// Propagates the first error from any generation.
    pub fn run(mut self) -> Result<RunSummary, GestError> {
        for _ in 0..self.config.generations {
            self.step()?;
        }
        let best = self.best.expect("at least one generation ran");
        let best_program = {
            let body = gest_isa::InstructionPool::flatten(&best.genes);
            self.config.template.materialize("best", body)
        };
        Ok(RunSummary {
            best,
            best_program,
            history: self.history,
            generations: self.generation,
            metric_names: self.measurement.metrics().to_vec(),
        })
    }

    /// Evaluates candidates in parallel across the configured number of
    /// threads (the substrate analogue of the paper's per-individual
    /// measure step, which dominates runtime: "5 seconds per measurement …
    /// the runtime is approximately 7 hours").
    fn evaluate(
        &self,
        generation: u32,
        candidates: Vec<Candidate<Gene>>,
    ) -> Result<Population<Gene>, GestError> {
        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.config.threads
        }
        .min(candidates.len().max(1));

        type Slot = Mutex<Option<Result<Evaluated<Gene>, GestError>>>;
        let results: Vec<Slot> = candidates.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let candidates_ref = &candidates;
        let results_ref = &results;
        let next_ref = &next;

        crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(move |_| loop {
                    let index = next_ref.fetch_add(1, Ordering::Relaxed);
                    let Some(candidate) = candidates_ref.get(index) else { break };
                    let outcome = self.evaluate_one(generation, candidate);
                    *results_ref[index].lock() = Some(outcome);
                });
            }
        })
        .expect("evaluation workers do not panic");

        let mut individuals = Vec::with_capacity(candidates.len());
        for slot in results {
            match slot.into_inner().expect("every candidate was evaluated") {
                Ok(evaluated) => individuals.push(evaluated),
                Err(e) => return Err(e),
            }
        }
        Ok(Population { generation, individuals })
    }

    fn evaluate_one(
        &self,
        generation: u32,
        candidate: &Candidate<Gene>,
    ) -> Result<Evaluated<Gene>, GestError> {
        let program = self.materialize(&format!("{generation}_{}", candidate.id), &candidate.genes);
        let measurements = self.measurement.measure(&program)?;
        let fitness = self.fitness.fitness(&FitnessContext {
            measurements: &measurements,
            genes: &candidate.genes,
            pool: &self.config.pool,
        });
        Ok(Evaluated {
            id: candidate.id,
            parents: candidate.parents,
            genes: candidate.genes.clone(),
            fitness,
            measurements,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GestConfig;

    fn tiny_config(machine: &str, measurement: &str) -> GestConfig {
        GestConfig::builder(machine)
            .measurement(measurement)
            .population_size(6)
            .individual_size(8)
            .generations(3)
            .seed(11)
            .build()
            .unwrap()
    }

    #[test]
    fn run_improves_or_holds_power_fitness() {
        let summary = GestRun::new(tiny_config("cortex-a15", "power")).unwrap().run().unwrap();
        assert_eq!(summary.generations, 3);
        let series = summary.history.best_series();
        assert_eq!(series.len(), 3);
        // Elitism: monotone non-decreasing best fitness.
        for window in series.windows(2) {
            assert!(window[1] >= window[0] - 1e-12, "{series:?}");
        }
        assert!(summary.best.fitness > 0.0);
        assert_eq!(summary.metric_names[0], "avg_power_w");
        assert_eq!(summary.best_breakdown().iter().sum::<usize>(), 8);
    }

    #[test]
    fn runs_are_reproducible() {
        let a = GestRun::new(tiny_config("cortex-a7", "power")).unwrap().run().unwrap();
        let b = GestRun::new(tiny_config("cortex-a7", "power")).unwrap().run().unwrap();
        assert_eq!(a.best.genes, b.best.genes);
        assert_eq!(a.best.fitness, b.best.fitness);
    }

    #[test]
    fn single_thread_matches_parallel() {
        let mut parallel_cfg = tiny_config("cortex-a7", "ipc");
        parallel_cfg.threads = 4;
        let mut serial_cfg = tiny_config("cortex-a7", "ipc");
        serial_cfg.threads = 1;
        let a = GestRun::new(parallel_cfg).unwrap().run().unwrap();
        let b = GestRun::new(serial_cfg).unwrap().run().unwrap();
        assert_eq!(a.best.genes, b.best.genes);
    }

    #[test]
    fn voltage_noise_run_on_athlon() {
        let summary =
            GestRun::new(tiny_config("athlon-x4", "voltage_noise")).unwrap().run().unwrap();
        assert!(summary.best.fitness > 0.0, "p2p noise should be positive");
        assert_eq!(summary.metric_names[0], "peak_to_peak_v");
    }

    #[test]
    fn step_api_exposes_populations() {
        let mut run = GestRun::new(tiny_config("cortex-a15", "power")).unwrap();
        assert!(run.population().is_none());
        let population = run.step().unwrap();
        assert_eq!(population.generation, 0);
        assert_eq!(population.len(), 6);
        run.step().unwrap();
        assert_eq!(run.population().unwrap().generation, 1);
        assert_eq!(run.history().summaries().len(), 2);
    }

    #[test]
    fn output_dir_receives_files_and_seeds_new_run() {
        let dir = std::env::temp_dir().join(format!("gest_runner_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = tiny_config("cortex-a15", "power");
        config.output_dir = Some(dir.clone());
        let summary = GestRun::new(config).unwrap().run().unwrap();
        let files = OutputWriter::population_files(&dir).unwrap();
        assert_eq!(files.len(), 3, "one population file per generation");

        // Seed a new run from the last population: its seed generation
        // must already contain the old best fitness (elite genes carried).
        let mut seeded_cfg = tiny_config("cortex-a15", "power");
        seeded_cfg.seed_population = Some(files.last().unwrap().clone());
        let mut seeded = GestRun::new(seeded_cfg).unwrap();
        let first = seeded.step().unwrap();
        assert!(
            first.best().unwrap().fitness >= summary.best.fitness * 0.99,
            "seeded run should start near the previous best"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
