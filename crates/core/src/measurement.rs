//! The measurement plug-in interface (the paper's `Measurement.py`).
//!
//! In the paper, a measurement script copies the compiled individual to the
//! target over ssh, runs it, and samples an instrument (energy probe, i2c
//! sensor, perf, oscilloscope). Here the "target machine" is a simulated
//! CPU, and each shipped measurement runs the program on it and reports
//! the corresponding instrument's numbers. Custom measurements implement
//! [`Measurement`] and can be selected by name in the main configuration,
//! mirroring the paper's dynamic class loading.

use crate::error::GestError;
use gest_isa::Program;
use gest_sim::{MachineConfig, RunConfig, RunResult, Simulator};
use std::fmt::Debug;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Outcome of a batched measurement: one entry per program, in order —
/// the metric values plus the optional simulator detail, or that lane's
/// own error.
pub type MeasuredBatch = Vec<Result<(Vec<f64>, Option<RunResult>), GestError>>;

/// A measurement procedure: run a program, return metric values.
///
/// The first value is the headline metric — by the paper's convention it
/// becomes the default fitness and leads the output file name.
pub trait Measurement: Send + Sync + Debug {
    /// Identifier used in configuration files.
    fn name(&self) -> &'static str;

    /// Names of the values returned by [`measure`](Measurement::measure),
    /// in order.
    fn metrics(&self) -> &'static [&'static str];

    /// Runs the program and returns the metric values.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures as [`GestError::Sim`].
    fn measure(&self, program: &Program) -> Result<Vec<f64>, GestError>;

    /// Like [`measure`](Measurement::measure), additionally returning the
    /// full simulator result when one backs the measurement, so observers
    /// (the runner's telemetry) can export pipeline/cache/PDN statistics
    /// without a second run. The default implementation returns no detail,
    /// keeping custom measurements source-compatible.
    ///
    /// # Errors
    ///
    /// Same as [`measure`](Measurement::measure).
    fn measure_detailed(
        &self,
        program: &Program,
    ) -> Result<(Vec<f64>, Option<RunResult>), GestError> {
        Ok((self.measure(program)?, None))
    }

    /// Measures a whole batch, one result per program, in order. The
    /// default loops [`measure_detailed`](Measurement::measure_detailed),
    /// so every measurement supports batching; sim-backed measurements
    /// override it to run all programs through the simulator's lockstep
    /// batch core, which amortizes per-run setup without changing any
    /// value. A failing program yields an `Err` in its lane only — it
    /// never disturbs its neighbours.
    fn measure_batch_detailed(&self, programs: &[Program]) -> MeasuredBatch {
        programs
            .iter()
            .map(|program| self.measure_detailed(program))
            .collect()
    }

    /// Whether the measured values are a pure function of the program's
    /// *content* (its instructions and template), independent of the
    /// program name, wall-clock time, or any other ambient state. Only
    /// content-pure measurements are eligible for the runner's evaluation
    /// cache; the conservative default keeps custom measurements uncached
    /// until they opt in.
    fn content_pure(&self) -> bool {
        false
    }
}

/// Shared plumbing: a simulator plus run parameters.
#[derive(Debug, Clone)]
struct SimBacked {
    simulator: Simulator,
    run_config: RunConfig,
}

thread_local! {
    /// One reusable simulator scratch per evaluation thread: decode
    /// buffers, the per-cycle energy waveform, and steady-state detector
    /// storage survive across the many programs a GA worker measures.
    static SIM_SCRATCH: std::cell::RefCell<gest_sim::SimScratch> =
        std::cell::RefCell::new(gest_sim::SimScratch::new());

    /// The batched counterpart: per-lane scratch plus the shared memos
    /// (fill-pattern hashes, thermal schedule) that make batch evaluation
    /// cheaper than N single runs.
    static BATCH_SCRATCH: std::cell::RefCell<gest_sim::BatchScratch> =
        std::cell::RefCell::new(gest_sim::BatchScratch::new());
}

// Process-wide fast-path counters, drained from the thread-local scratch
// after every run (the scratch dies with its worker thread, so per-thread
// counters alone cannot be read after an evaluation pool winds down).
static SIM_RUNS: AtomicU64 = AtomicU64::new(0);
static SIM_STEADY_HITS: AtomicU64 = AtomicU64::new(0);
static SIM_EXTRAPOLATED_ITERATIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide counters of the simulator's steady-state fast path across
/// every sim-backed measurement in this process (see
/// [`gest_sim::SimScratch`]). Monotonic; sample before and after a run and
/// difference to scope them, as `gest bench` does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimFastPathStats {
    /// Simulator runs performed.
    pub runs: u64,
    /// Runs in which the steady-state detector fired.
    pub steady_hits: u64,
    /// Loop iterations synthesized analytically instead of executed.
    pub extrapolated_iterations: u64,
}

/// Samples the process-wide [`SimFastPathStats`].
pub fn sim_fast_path_stats() -> SimFastPathStats {
    SimFastPathStats {
        runs: SIM_RUNS.load(Ordering::Relaxed),
        steady_hits: SIM_STEADY_HITS.load(Ordering::Relaxed),
        extrapolated_iterations: SIM_EXTRAPOLATED_ITERATIONS.load(Ordering::Relaxed),
    }
}

impl SimBacked {
    fn run(&self, program: &Program) -> Result<RunResult, GestError> {
        SIM_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            let before = (
                scratch.runs,
                scratch.steady_hits,
                scratch.extrapolated_iterations,
            );
            let result =
                self.simulator
                    .run_with_scratch(program, &self.run_config, &mut scratch)?;
            SIM_RUNS.fetch_add(scratch.runs - before.0, Ordering::Relaxed);
            SIM_STEADY_HITS.fetch_add(scratch.steady_hits - before.1, Ordering::Relaxed);
            SIM_EXTRAPOLATED_ITERATIONS.fetch_add(
                scratch.extrapolated_iterations - before.2,
                Ordering::Relaxed,
            );
            Ok(result)
        })
    }

    /// Runs every program through the simulator's lockstep batch core.
    /// Per-lane results are bit-identical to [`run`](SimBacked::run); the
    /// process-wide fast-path counters advance exactly as N single runs
    /// would advance them.
    fn run_batch(&self, programs: &[Program]) -> Vec<Result<RunResult, GestError>> {
        BATCH_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            let before = (
                scratch.runs,
                scratch.steady_hits,
                scratch.extrapolated_iterations,
            );
            let results =
                self.simulator
                    .run_batch_with_scratch(programs, &self.run_config, &mut scratch);
            SIM_RUNS.fetch_add(scratch.runs - before.0, Ordering::Relaxed);
            SIM_STEADY_HITS.fetch_add(scratch.steady_hits - before.1, Ordering::Relaxed);
            SIM_EXTRAPOLATED_ITERATIONS.fetch_add(
                scratch.extrapolated_iterations - before.2,
                Ordering::Relaxed,
            );
            results
                .into_iter()
                .map(|lane| lane.map_err(GestError::from))
                .collect()
        })
    }
}

/// Average-power measurement (the ARM energy-probe stand-in; paper §V).
///
/// Metrics: `[avg_power_w, peak_power_w, ipc]`.
#[derive(Debug, Clone)]
pub struct PowerMeasurement(SimBacked);

impl PowerMeasurement {
    /// Creates the measurement for a machine.
    pub fn new(machine: MachineConfig, run_config: RunConfig) -> PowerMeasurement {
        PowerMeasurement(SimBacked {
            simulator: Simulator::new(machine),
            run_config,
        })
    }

    /// The one projection from a simulator result to this measurement's
    /// metric vector, shared by the single and batched paths.
    fn project(result: RunResult) -> (Vec<f64>, Option<RunResult>) {
        (
            vec![result.avg_power_w, result.peak_power_w, result.ipc],
            Some(result),
        )
    }
}

impl Measurement for PowerMeasurement {
    fn name(&self) -> &'static str {
        "power"
    }

    fn content_pure(&self) -> bool {
        true
    }

    fn metrics(&self) -> &'static [&'static str] {
        &["avg_power_w", "peak_power_w", "ipc"]
    }

    fn measure(&self, program: &Program) -> Result<Vec<f64>, GestError> {
        Ok(self.measure_detailed(program)?.0)
    }

    fn measure_detailed(
        &self,
        program: &Program,
    ) -> Result<(Vec<f64>, Option<RunResult>), GestError> {
        Ok(Self::project(self.0.run(program)?))
    }

    fn measure_batch_detailed(&self, programs: &[Program]) -> MeasuredBatch {
        self.0
            .run_batch(programs)
            .into_iter()
            .map(|lane| lane.map(Self::project))
            .collect()
    }
}

/// Chip-temperature measurement (the i2c sensor stand-in; paper §V,
/// X-Gene2).
///
/// Metrics: `[temperature_c, avg_power_w, ipc]`.
#[derive(Debug, Clone)]
pub struct TemperatureMeasurement(SimBacked);

impl TemperatureMeasurement {
    /// Creates the measurement for a machine.
    pub fn new(machine: MachineConfig, run_config: RunConfig) -> TemperatureMeasurement {
        TemperatureMeasurement(SimBacked {
            simulator: Simulator::new(machine),
            run_config,
        })
    }

    /// The one projection from a simulator result to this measurement's
    /// metric vector, shared by the single and batched paths.
    fn project(result: RunResult) -> (Vec<f64>, Option<RunResult>) {
        (
            vec![result.temperature_c, result.avg_power_w, result.ipc],
            Some(result),
        )
    }
}

impl Measurement for TemperatureMeasurement {
    fn name(&self) -> &'static str {
        "temperature"
    }

    fn content_pure(&self) -> bool {
        true
    }

    fn metrics(&self) -> &'static [&'static str] {
        &["temperature_c", "avg_power_w", "ipc"]
    }

    fn measure(&self, program: &Program) -> Result<Vec<f64>, GestError> {
        Ok(self.measure_detailed(program)?.0)
    }

    fn measure_detailed(
        &self,
        program: &Program,
    ) -> Result<(Vec<f64>, Option<RunResult>), GestError> {
        Ok(Self::project(self.0.run(program)?))
    }

    fn measure_batch_detailed(&self, programs: &[Program]) -> MeasuredBatch {
        self.0
            .run_batch(programs)
            .into_iter()
            .map(|lane| lane.map(Self::project))
            .collect()
    }
}

/// IPC measurement (the `perf` stand-in; paper §V, IPC virus).
///
/// Metrics: `[ipc, avg_power_w, temperature_c]`.
#[derive(Debug, Clone)]
pub struct IpcMeasurement(SimBacked);

impl IpcMeasurement {
    /// Creates the measurement for a machine.
    pub fn new(machine: MachineConfig, run_config: RunConfig) -> IpcMeasurement {
        IpcMeasurement(SimBacked {
            simulator: Simulator::new(machine),
            run_config,
        })
    }

    /// The one projection from a simulator result to this measurement's
    /// metric vector, shared by the single and batched paths.
    fn project(result: RunResult) -> (Vec<f64>, Option<RunResult>) {
        (
            vec![result.ipc, result.avg_power_w, result.temperature_c],
            Some(result),
        )
    }
}

impl Measurement for IpcMeasurement {
    fn name(&self) -> &'static str {
        "ipc"
    }

    fn content_pure(&self) -> bool {
        true
    }

    fn metrics(&self) -> &'static [&'static str] {
        &["ipc", "avg_power_w", "temperature_c"]
    }

    fn measure(&self, program: &Program) -> Result<Vec<f64>, GestError> {
        Ok(self.measure_detailed(program)?.0)
    }

    fn measure_detailed(
        &self,
        program: &Program,
    ) -> Result<(Vec<f64>, Option<RunResult>), GestError> {
        Ok(Self::project(self.0.run(program)?))
    }

    fn measure_batch_detailed(&self, programs: &[Program]) -> MeasuredBatch {
        self.0
            .run_batch(programs)
            .into_iter()
            .map(|lane| lane.map(Self::project))
            .collect()
    }
}

/// Voltage-noise measurement (the oscilloscope stand-in; paper §VI).
///
/// Metrics: `[peak_to_peak_v, max_droop_v, avg_power_w]`.
#[derive(Debug, Clone)]
pub struct VoltageNoiseMeasurement(SimBacked);

impl VoltageNoiseMeasurement {
    /// Creates the measurement for a machine.
    ///
    /// # Errors
    ///
    /// Returns [`GestError::Config`] if the machine has no PDN model (no
    /// voltage sense points, like the paper's Versatile Express boards).
    pub fn new(
        machine: MachineConfig,
        run_config: RunConfig,
    ) -> Result<VoltageNoiseMeasurement, GestError> {
        if machine.pdn.is_none() {
            return Err(GestError::Config(format!(
                "machine {:?} has no PDN model: voltage noise cannot be measured",
                machine.name
            )));
        }
        Ok(VoltageNoiseMeasurement(SimBacked {
            simulator: Simulator::new(machine),
            run_config,
        }))
    }

    /// The one projection from a simulator result to this measurement's
    /// metric vector, shared by the single and batched paths.
    fn project(result: RunResult) -> (Vec<f64>, Option<RunResult>) {
        let stats = result.voltage.expect("constructor verified the PDN exists");
        (
            vec![stats.peak_to_peak(), stats.max_droop(), result.avg_power_w],
            Some(result),
        )
    }
}

impl Measurement for VoltageNoiseMeasurement {
    fn name(&self) -> &'static str {
        "voltage_noise"
    }

    fn content_pure(&self) -> bool {
        true
    }

    fn metrics(&self) -> &'static [&'static str] {
        &["peak_to_peak_v", "max_droop_v", "avg_power_w"]
    }

    fn measure(&self, program: &Program) -> Result<Vec<f64>, GestError> {
        Ok(self.measure_detailed(program)?.0)
    }

    fn measure_detailed(
        &self,
        program: &Program,
    ) -> Result<(Vec<f64>, Option<RunResult>), GestError> {
        Ok(Self::project(self.0.run(program)?))
    }

    fn measure_batch_detailed(&self, programs: &[Program]) -> MeasuredBatch {
        self.0
            .run_batch(programs)
            .into_iter()
            .map(|lane| lane.map(Self::project))
            .collect()
    }
}

/// Cache-miss measurement, for the paper's §VII extension: "with GeST is
/// possible to stress LLC or DRAM by instructing the framework to optimize
/// towards cache-misses and providing in the input file load/store
/// instruction definitions with various strides".
///
/// Metrics: `[l1_misses_per_kinstr, l1_miss_rate, avg_power_w]`. Pair it
/// with a machine whose scratch buffer exceeds L1 (see
/// [`crate::pools::llc_pool`]).
#[derive(Debug, Clone)]
pub struct CacheMissMeasurement(SimBacked);

impl CacheMissMeasurement {
    /// Creates the measurement for a machine.
    pub fn new(machine: MachineConfig, run_config: RunConfig) -> CacheMissMeasurement {
        CacheMissMeasurement(SimBacked {
            simulator: Simulator::new(machine),
            run_config,
        })
    }

    /// The one projection from a simulator result to this measurement's
    /// metric vector, shared by the single and batched paths.
    fn project(result: RunResult) -> (Vec<f64>, Option<RunResult>) {
        let misses_per_kinstr =
            1000.0 * result.l1.misses as f64 / result.instructions.max(1) as f64;
        (
            vec![
                misses_per_kinstr,
                1.0 - result.l1.hit_rate(),
                result.avg_power_w,
            ],
            Some(result),
        )
    }
}

impl Measurement for CacheMissMeasurement {
    fn name(&self) -> &'static str {
        "cache_miss"
    }

    fn content_pure(&self) -> bool {
        true
    }

    fn metrics(&self) -> &'static [&'static str] {
        &["l1_misses_per_kinstr", "l1_miss_rate", "avg_power_w"]
    }

    fn measure(&self, program: &Program) -> Result<Vec<f64>, GestError> {
        Ok(self.measure_detailed(program)?.0)
    }

    fn measure_detailed(
        &self,
        program: &Program,
    ) -> Result<(Vec<f64>, Option<RunResult>), GestError> {
        Ok(Self::project(self.0.run(program)?))
    }

    fn measure_batch_detailed(&self, programs: &[Program]) -> MeasuredBatch {
        self.0
            .run_batch(programs)
            .into_iter()
            .map(|lane| lane.map(Self::project))
            .collect()
    }
}

/// Wraps any measurement with multiplicative Gaussian noise, modelling the
/// instrument variability the paper works around by optimizing on a single
/// core ("less measurement variability which helps the GA optimization to
/// converge faster", §IV).
///
/// Noise is a pure function of the program name and metric index, so runs
/// stay reproducible regardless of evaluation-thread interleaving.
#[derive(Debug)]
pub struct NoisyMeasurement {
    inner: Arc<dyn Measurement>,
    sigma_rel: f64,
    seed: u64,
}

impl NoisyMeasurement {
    /// Wraps `inner`, perturbing every value by `N(0, sigma_rel)` relative
    /// noise.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_rel` is negative.
    pub fn wrap(inner: Arc<dyn Measurement>, sigma_rel: f64, seed: u64) -> NoisyMeasurement {
        assert!(sigma_rel >= 0.0, "noise sigma must be non-negative");
        NoisyMeasurement {
            inner,
            sigma_rel,
            seed,
        }
    }

    fn gaussian(&self, name: &str, index: usize) -> f64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.seed.hash(&mut hasher);
        name.hash(&mut hasher);
        index.hash(&mut hasher);
        let bits = hasher.finish();
        // Box-Muller from two 32-bit halves.
        let u1 = ((bits >> 32) as f64 + 1.0) / (u32::MAX as f64 + 2.0);
        let u2 = ((bits & 0xFFFF_FFFF) as f64 + 1.0) / (u32::MAX as f64 + 2.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    fn perturb(&self, name: &str, values: &mut [f64]) {
        for (index, value) in values.iter_mut().enumerate() {
            *value *= 1.0 + self.sigma_rel * self.gaussian(name, index);
        }
    }
}

impl Measurement for NoisyMeasurement {
    fn name(&self) -> &'static str {
        "noisy"
    }

    fn metrics(&self) -> &'static [&'static str] {
        self.inner.metrics()
    }

    fn measure(&self, program: &Program) -> Result<Vec<f64>, GestError> {
        Ok(self.measure_detailed(program)?.0)
    }

    /// Forwards to the wrapped measurement, perturbing only the metric
    /// values — the simulator detail stays exact, mirroring an instrument
    /// that is noisy while the silicon underneath is not.
    fn measure_detailed(
        &self,
        program: &Program,
    ) -> Result<(Vec<f64>, Option<RunResult>), GestError> {
        let (mut values, detail) = self.inner.measure_detailed(program)?;
        self.perturb(&program.name, &mut values);
        Ok((values, detail))
    }

    /// Forwards the whole batch to the wrapped measurement (keeping its
    /// batched fast path) and perturbs each lane afterwards. Noise is a
    /// pure function of `(seed, program name, metric index)`, so the
    /// batched values equal the looped single-program values exactly.
    fn measure_batch_detailed(&self, programs: &[Program]) -> MeasuredBatch {
        self.inner
            .measure_batch_detailed(programs)
            .into_iter()
            .zip(programs)
            .map(|(lane, program)| {
                lane.map(|(mut values, detail)| {
                    self.perturb(&program.name, &mut values);
                    (values, detail)
                })
            })
            .collect()
    }
}

/// Instantiates a shipped measurement by its configuration name —
/// the substrate equivalent of the paper's dynamic Python class loading.
///
/// Known names: `power`, `temperature`, `ipc`, `voltage_noise`,
/// `cache_miss`.
///
/// # Errors
///
/// [`GestError::Config`] for unknown names or invalid machine/measurement
/// combinations.
///
/// # Examples
///
/// ```
/// # #![allow(deprecated)]
/// # fn main() -> Result<(), gest_core::GestError> {
/// use gest_sim::{MachineConfig, RunConfig};
/// let m = gest_core::measurement_by_name(
///     "power",
///     MachineConfig::cortex_a15(),
///     RunConfig::default(),
/// )?;
/// assert_eq!(m.name(), "power");
/// # Ok(())
/// # }
/// ```
#[deprecated(
    since = "0.2.0",
    note = "use Registry::default().build_measurement(name, machine, run_config)"
)]
pub fn measurement_by_name(
    name: &str,
    machine: MachineConfig,
    run_config: RunConfig,
) -> Result<Arc<dyn Measurement>, GestError> {
    crate::Registry::default().build_measurement(name, machine, run_config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gest_isa::{asm, Template};

    fn demo_program() -> Program {
        Template::default_stress().materialize(
            "demo",
            asm::parse_block("FMUL v8, v1, v2\nADD x1, x2, x3").unwrap(),
        )
    }

    #[test]
    fn power_measurement_reports_three_metrics() {
        let m = PowerMeasurement::new(MachineConfig::cortex_a15(), RunConfig::quick());
        let values = m.measure(&demo_program()).unwrap();
        assert_eq!(values.len(), m.metrics().len());
        assert!(values[0] > 0.0);
        assert!(values[1] >= values[0], "peak >= avg");
    }

    #[test]
    fn temperature_headline_is_celsius() {
        let m = TemperatureMeasurement::new(MachineConfig::xgene2(), RunConfig::quick());
        let values = m.measure(&demo_program()).unwrap();
        let ambient = MachineConfig::xgene2().thermal.ambient_c;
        assert!(
            values[0] > ambient,
            "temperature {} above ambient",
            values[0]
        );
    }

    #[test]
    fn ipc_headline_bounded_by_width() {
        let m = IpcMeasurement::new(MachineConfig::xgene2(), RunConfig::quick());
        let values = m.measure(&demo_program()).unwrap();
        assert!(values[0] > 0.0 && values[0] <= 4.0);
    }

    #[test]
    fn voltage_noise_requires_pdn() {
        assert!(matches!(
            VoltageNoiseMeasurement::new(MachineConfig::cortex_a15(), RunConfig::quick()),
            Err(GestError::Config(_))
        ));
        let m =
            VoltageNoiseMeasurement::new(MachineConfig::athlon_x4(), RunConfig::quick()).unwrap();
        let values = m.measure(&demo_program()).unwrap();
        assert!(values[0] >= 0.0, "p2p noise");
        assert!(values[1] >= 0.0, "droop");
    }

    #[test]
    fn cache_miss_measurement_counts_misses() {
        // Small buffer: everything hits; big buffer with striding loads:
        // misses dominate.
        let mut machine = MachineConfig::xgene2();
        machine.mem_bytes = 1 << 20;
        let m = CacheMissMeasurement::new(machine, RunConfig::quick());
        let resident = m.measure(&demo_program()).unwrap();
        assert!(
            resident[1] < 0.05,
            "L1-resident program should hit: {resident:?}"
        );
        let streaming = Template::default_stress().materialize(
            "stream",
            asm::parse_block("LDR x11, [x10, #0]\nADDI x10, x10, #64").unwrap(),
        );
        let missing = m.measure(&streaming).unwrap();
        assert!(
            missing[0] > 100.0,
            "striding loads should miss: {missing:?}"
        );
        assert!(missing[1] > 0.3, "miss rate: {missing:?}");
    }

    #[test]
    fn noisy_measurement_perturbs_reproducibly() {
        let inner: Arc<dyn Measurement> = Arc::new(PowerMeasurement::new(
            MachineConfig::cortex_a15(),
            RunConfig::quick(),
        ));
        let clean = inner.measure(&demo_program()).unwrap();
        let noisy = NoisyMeasurement::wrap(Arc::clone(&inner), 0.05, 9);
        let a = noisy.measure(&demo_program()).unwrap();
        let b = noisy.measure(&demo_program()).unwrap();
        assert_eq!(a, b, "noise must be a pure function of the program");
        assert_ne!(a, clean, "5% noise should perturb");
        assert!(
            (a[0] / clean[0] - 1.0).abs() < 0.3,
            "noise bounded: {a:?} vs {clean:?}"
        );
        // Different seeds decorrelate.
        let other = NoisyMeasurement::wrap(inner, 0.05, 10)
            .measure(&demo_program())
            .unwrap();
        assert_ne!(a, other);
    }

    #[test]
    fn noisy_zero_sigma_is_identity() {
        let inner: Arc<dyn Measurement> = Arc::new(PowerMeasurement::new(
            MachineConfig::cortex_a15(),
            RunConfig::quick(),
        ));
        let clean = inner.measure(&demo_program()).unwrap();
        let wrapped = NoisyMeasurement::wrap(inner, 0.0, 1)
            .measure(&demo_program())
            .unwrap();
        assert_eq!(clean, wrapped);
    }

    #[test]
    fn measure_detailed_exposes_simulator_result() {
        let m = PowerMeasurement::new(MachineConfig::cortex_a15(), RunConfig::quick());
        let (values, detail) = m.measure_detailed(&demo_program()).unwrap();
        assert_eq!(values, m.measure(&demo_program()).unwrap());
        let detail = detail.expect("sim-backed measurement exposes the run result");
        assert_eq!(detail.avg_power_w, values[0]);
        assert!(detail.metric_kv().len() >= 13, "full stat export");

        // A custom measurement that only implements `measure` still works,
        // reporting no detail through the default implementation.
        #[derive(Debug)]
        struct Flat;
        impl Measurement for Flat {
            fn name(&self) -> &'static str {
                "flat"
            }
            fn metrics(&self) -> &'static [&'static str] {
                &["one"]
            }
            fn measure(&self, _program: &Program) -> Result<Vec<f64>, GestError> {
                Ok(vec![1.0])
            }
        }
        let (values, detail) = Flat.measure_detailed(&demo_program()).unwrap();
        assert_eq!(values, vec![1.0]);
        assert!(detail.is_none());
    }

    #[test]
    fn batched_measurements_match_singles_lane_for_lane() {
        let m = PowerMeasurement::new(MachineConfig::cortex_a15(), RunConfig::quick());
        let programs = vec![
            demo_program(),
            // An empty body fails in its lane only (SimError::EmptyProgram).
            Template::default_stress().materialize("empty", asm::parse_block("").unwrap()),
            Template::default_stress().materialize(
                "stream",
                asm::parse_block("LDR x11, [x10, #0]\nADDI x10, x10, #64").unwrap(),
            ),
        ];
        let batched = m.measure_batch_detailed(&programs);
        assert_eq!(batched.len(), programs.len());
        assert!(batched[1].is_err(), "empty lane fails alone");
        for (program, lane) in programs.iter().zip(&batched) {
            match (lane, m.measure_detailed(program)) {
                (Ok((values, detail)), Ok((single_values, single_detail))) => {
                    assert_eq!(values, &single_values, "{}", program.name);
                    assert_eq!(detail, &single_detail, "{}", program.name);
                }
                (Err(_), Err(_)) => {}
                (lane, single) => panic!(
                    "{}: lane ok={} but single ok={}",
                    program.name,
                    lane.is_ok(),
                    single.is_ok()
                ),
            }
        }

        // The noisy wrapper forwards batches; pure per-name noise keeps
        // batched values equal to looped singles.
        let noisy = NoisyMeasurement::wrap(Arc::new(m), 0.05, 9);
        for (program, lane) in programs.iter().zip(noisy.measure_batch_detailed(&programs)) {
            match (lane, noisy.measure_detailed(program)) {
                (Ok((values, _)), Ok((single_values, _))) => {
                    assert_eq!(values, single_values, "{}", program.name);
                }
                (Err(_), Err(_)) => {}
                _ => panic!("{}: noisy lane/single disagree", program.name),
            }
        }

        // A measurement that never overrides the batch hook still batches
        // through the looping default.
        #[derive(Debug)]
        struct Flat;
        impl Measurement for Flat {
            fn name(&self) -> &'static str {
                "flat"
            }
            fn metrics(&self) -> &'static [&'static str] {
                &["one"]
            }
            fn measure(&self, _program: &Program) -> Result<Vec<f64>, GestError> {
                Ok(vec![1.0])
            }
        }
        let flat = Flat.measure_batch_detailed(&programs);
        assert_eq!(flat.len(), programs.len());
        for lane in flat {
            assert_eq!(lane.unwrap().0, vec![1.0]);
        }
    }

    #[test]
    #[allow(deprecated)] // deliberately exercises the legacy shim
    fn registry_resolves_all_names() {
        for name in ["power", "temperature", "ipc", "cache_miss"] {
            let m = measurement_by_name(name, MachineConfig::xgene2(), RunConfig::quick()).unwrap();
            assert_eq!(m.name(), name);
        }
        let m = measurement_by_name(
            "voltage_noise",
            MachineConfig::athlon_x4(),
            RunConfig::quick(),
        )
        .unwrap();
        assert_eq!(m.name(), "voltage_noise");
        assert!(measurement_by_name(
            "oscilloscope",
            MachineConfig::athlon_x4(),
            RunConfig::quick()
        )
        .is_err());
    }
}
