//! Run outputs (paper §III.D).
//!
//! * Every individual's source code is saved to its own file, named
//!   `{generation}_{id}_{measurement1}_{measurement2}....txt` — "by
//!   default, the first measurement is the fitness value, this naming
//!   convention facilitates the quick retrieval of the fittest individual
//!   using basic UNIX commands".
//! * Every generation is additionally saved to a binary population file
//!   containing source, ids, parent ids, and measurement values, loadable
//!   for post-processing ([`crate::stats`]) or as the seed population of a
//!   new search.
//! * The configuration and template are copied into the output directory
//!   for record-keeping.

use crate::config::GestConfig;
use crate::error::GestError;
use gest_ga::{Evaluated, Population};
use gest_isa::codec::{Decoder, Encoder};
use gest_isa::{CodecError, Gene, InstructionPool, Template};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Magic bytes identifying a population file.
const MAGIC: &[u8; 8] = b"GESTPOP1";

/// Collision-free run-directory ids: `r<prefix>-<seq>`, where the prefix
/// is derived from a seed (stable across restarts of the same service)
/// and the sequence number is monotonic within the allocator.
///
/// `gest-serve` names every submitted run's directory through one of
/// these; `gest run` falls back to one when neither `--dir` nor an
/// `<output dir=...>` element names a directory. Ids are made
/// collision-free on disk by [`RunIdAllocator::allocate_dir`], which
/// skips sequence numbers whose directory already exists (so a restarted
/// allocator continues monotonically past its predecessor's runs).
#[derive(Debug)]
pub struct RunIdAllocator {
    prefix: String,
    next: AtomicU64,
}

impl RunIdAllocator {
    /// An allocator whose id prefix is derived deterministically from
    /// `seed` (FNV-1a over the seed bytes, rendered as 8 hex digits).
    pub fn seeded(seed: u64) -> RunIdAllocator {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in seed.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        RunIdAllocator {
            prefix: format!("{:08x}", (hash >> 32) as u32 ^ hash as u32),
            next: AtomicU64::new(0),
        }
    }

    /// An allocator seeded from process id and wall-clock time — for
    /// callers without a natural seed (`gest run` with no directory).
    pub fn from_entropy() -> RunIdAllocator {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.subsec_nanos() as u64 ^ d.as_secs());
        RunIdAllocator::seeded(nanos ^ (u64::from(std::process::id()) << 32))
    }

    /// Advances the sequence so the next issued number is at least
    /// `floor` — how a restarted service skips ids its predecessor
    /// already handed out.
    pub fn advance_past(&self, floor: u64) {
        self.next.fetch_max(floor, Ordering::Relaxed);
    }

    /// The next id in the sequence (no filesystem interaction).
    pub fn next_id(&self) -> String {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        format!("r{}-{seq:04}", self.prefix)
    }

    /// Allocates the next id whose directory under `root` does not exist
    /// yet, creates that directory, and returns `(id, path)`. Existing
    /// directories (from an earlier service incarnation with the same
    /// seed) are skipped, keeping the sequence monotonic across restarts.
    ///
    /// # Errors
    ///
    /// I/O errors creating `root` or the run directory.
    pub fn allocate_dir(&self, root: &Path) -> Result<(String, PathBuf), GestError> {
        fs::create_dir_all(root)?;
        loop {
            let id = self.next_id();
            let dir = root.join(&id);
            match fs::create_dir(&dir) {
                Ok(()) => return Ok((id, dir)),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }
}

/// One individual as stored in a population file.
#[derive(Debug, Clone, PartialEq)]
pub struct SavedIndividual {
    /// Run-unique id.
    pub id: u64,
    /// Parent ids (0 encodes "none" on disk; `None` here).
    pub parents: (Option<u64>, Option<u64>),
    /// Fitness value.
    pub fitness: f64,
    /// Measurement values in metric order.
    pub measurements: Vec<f64>,
    /// The instruction genes.
    pub genes: Vec<Gene>,
}

/// One generation as stored in a population file.
#[derive(Debug, Clone, PartialEq)]
pub struct SavedPopulation {
    /// Generation number.
    pub generation: u32,
    /// All individuals.
    pub individuals: Vec<SavedIndividual>,
}

impl SavedIndividual {
    /// Serializes one individual (shared by population files and
    /// checkpoint manifests).
    pub(crate) fn encode_into(&self, enc: &mut Encoder) {
        enc.u64(self.id);
        enc.u64(self.parents.0.map_or(u64::MAX, |p| p));
        enc.u64(self.parents.1.map_or(u64::MAX, |p| p));
        enc.f64(self.fitness);
        enc.varint(self.measurements.len() as u64);
        for &m in &self.measurements {
            enc.f64(m);
        }
        enc.varint(self.genes.len() as u64);
        for gene in &self.genes {
            enc.varint(gene.def_index as u64);
            enc.instructions(&gene.instrs);
        }
    }

    /// Deserializes one individual.
    pub(crate) fn decode_from(dec: &mut Decoder<'_>) -> Result<SavedIndividual, CodecError> {
        let id = dec.u64()?;
        let parent0 = dec.u64()?;
        let parent1 = dec.u64()?;
        let fitness = dec.f64()?;
        let n_measurements = dec.varint()?;
        let mut measurements = Vec::with_capacity(n_measurements.min(1 << 10) as usize);
        for _ in 0..n_measurements {
            measurements.push(dec.f64()?);
        }
        let n_genes = dec.varint()?;
        let mut genes = Vec::with_capacity(n_genes.min(1 << 12) as usize);
        for _ in 0..n_genes {
            let def_index = dec.varint()? as usize;
            let instrs = dec.instructions()?;
            if instrs.is_empty() {
                return Err(CodecError::Invalid("gene with no instructions".into()));
            }
            genes.push(Gene { def_index, instrs });
        }
        Ok(SavedIndividual {
            id,
            parents: (
                (parent0 != u64::MAX).then_some(parent0),
                (parent1 != u64::MAX).then_some(parent1),
            ),
            fitness,
            measurements,
            genes,
        })
    }

    /// Converts back to an evaluated individual (the inverse of the
    /// conversion in [`SavedPopulation::from_population`]).
    pub fn to_evaluated(&self) -> Evaluated<Gene> {
        Evaluated {
            id: self.id,
            parents: self.parents,
            genes: self.genes.clone(),
            fitness: self.fitness,
            measurements: self.measurements.clone(),
        }
    }
}

impl SavedPopulation {
    /// Converts an evaluated population for saving.
    pub fn from_population(population: &Population<Gene>) -> SavedPopulation {
        SavedPopulation {
            generation: population.generation,
            individuals: population
                .individuals
                .iter()
                .map(|e| SavedIndividual {
                    id: e.id,
                    parents: e.parents,
                    fitness: e.fitness,
                    measurements: e.measurements.clone(),
                    genes: e.genes.clone(),
                })
                .collect(),
        }
    }

    /// Serializes to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.bytes(MAGIC);
        enc.u32(self.generation);
        enc.varint(self.individuals.len() as u64);
        for individual in &self.individuals {
            individual.encode_into(&mut enc);
        }
        enc.into_bytes()
    }

    /// Deserializes from bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError`] for truncated, corrupt, or non-population input.
    pub fn decode(bytes: &[u8]) -> Result<SavedPopulation, CodecError> {
        let mut dec = Decoder::new(bytes);
        let magic = dec.bytes()?;
        if magic != MAGIC {
            return Err(CodecError::Invalid("not a GeST population file".into()));
        }
        let generation = dec.u32()?;
        let count = dec.varint()?;
        let mut individuals = Vec::with_capacity(count.min(1 << 16) as usize);
        for _ in 0..count {
            individuals.push(SavedIndividual::decode_from(&mut dec)?);
        }
        Ok(SavedPopulation {
            generation,
            individuals,
        })
    }

    /// Converts back into a live evaluated population, exactly as it was
    /// when saved — the restore path of checkpoint/resume. Unlike
    /// [`SavedPopulation::seed_genes`] this performs no pool re-binding:
    /// resuming is only valid against the identical configuration, which
    /// [`crate::Checkpoint`] verifies by fingerprint.
    pub fn to_population(&self) -> Population<Gene> {
        Population {
            generation: self.generation,
            individuals: self
                .individuals
                .iter()
                .map(SavedIndividual::to_evaluated)
                .collect(),
        }
    }

    /// Loads a population file from disk.
    ///
    /// # Errors
    ///
    /// I/O and codec errors.
    pub fn load(path: &Path) -> Result<SavedPopulation, GestError> {
        let bytes = fs::read(path)?;
        Ok(SavedPopulation::decode(&bytes)?)
    }

    /// Extracts the gene sequences, re-binding each gene to `pool` (a seed
    /// file may come from a run with a different pool). Genes whose
    /// instruction no longer matches any definition are dropped; callers
    /// pad with random genes.
    pub fn seed_genes(&self, pool: &InstructionPool) -> Vec<Vec<Gene>> {
        self.individuals
            .iter()
            .map(|individual| {
                individual
                    .genes
                    .iter()
                    .filter_map(|gene| {
                        pool.match_def_seq(&gene.instrs).map(|def_index| Gene {
                            def_index,
                            instrs: gene.instrs.clone(),
                        })
                    })
                    .collect()
            })
            .collect()
    }

    /// The fittest saved individual, if any.
    pub fn best(&self) -> Option<&SavedIndividual> {
        self.individuals
            .iter()
            .reduce(|best, x| if x.fitness > best.fitness { x } else { best })
    }
}

/// The write seam used by checkpoint manifests and eval-cache sidecars.
///
/// Production code uses [`RealFs`] (atomic tmp + rename); fault-injection
/// harnesses (`gest-chaos`) substitute a shim that simulates disk-full
/// errors, torn writes, and silent corruption without touching the real
/// persistence code paths.
pub trait WriteFs: Send + Sync + std::fmt::Debug {
    /// Writes `bytes` to `path` with whole-file atomicity (a reader never
    /// observes a half-written file under the final name).
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying filesystem.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()>;
}

/// The production [`WriteFs`]: delegates to the crate's atomic
/// tmp + rename write.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl WriteFs for RealFs {
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        atomic_write(path, bytes)
    }
}

/// Writes `bytes` to `path` atomically: the content lands in a `.tmp`
/// sibling first and is renamed into place, so a crash mid-write leaves
/// either the old file or the new one, never a truncated hybrid. The
/// durable artifacts of a run (population files, checkpoint manifests) all
/// go through this.
pub(crate) fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension(match path.extension().and_then(|e| e.to_str()) {
        Some(ext) => format!("{ext}.tmp"),
        None => "tmp".to_string(),
    });
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

/// Writes run outputs to a directory.
#[derive(Debug)]
pub struct OutputWriter {
    dir: PathBuf,
}

impl OutputWriter {
    /// Creates the output directory (and parents) and records the
    /// configuration and template, like the paper's record-keeping copies.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory or writing files.
    pub fn new(
        dir: &Path,
        config: &GestConfig,
        template: &Template,
    ) -> Result<OutputWriter, GestError> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join("config.xml"), config.to_xml().to_string())?;
        let template_program = template.materialize("template", Vec::new());
        fs::write(dir.join("template.txt"), template_program.to_string())?;
        Ok(OutputWriter {
            dir: dir.to_owned(),
        })
    }

    /// Reopens an existing output directory without rewriting the
    /// record-keeping files — the resume path, where `config.xml` and
    /// `template.txt` are the previous run's record and must stay
    /// byte-identical.
    ///
    /// # Errors
    ///
    /// [`GestError::Io`] when the directory does not exist.
    pub fn reopen(dir: &Path) -> Result<OutputWriter, GestError> {
        if !dir.is_dir() {
            return Err(GestError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("output directory {} does not exist", dir.display()),
            )));
        }
        Ok(OutputWriter {
            dir: dir.to_owned(),
        })
    }

    /// The output directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Saves one evaluated generation: per-individual source files plus
    /// the binary population file.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn save_generation(
        &self,
        population: &Population<Gene>,
        pool: &InstructionPool,
        template: &Template,
    ) -> Result<(), GestError> {
        for individual in &population.individuals {
            let mut name = format!("{}_{}", population.generation, individual.id);
            for m in &individual.measurements {
                name.push_str(&format!("_{m:.3}"));
            }
            name.push_str(".txt");
            let body = InstructionPool::flatten(&individual.genes);
            let program =
                template.materialize(format!("{}_{}", population.generation, individual.id), body);
            let mut source = program.to_string();
            // Custom per-definition formats, if any, are recorded after the
            // canonical source as a comment block.
            if individual
                .genes
                .iter()
                .any(|g| pool.defs()[g.def_index].format.is_some())
            {
                source.push_str("; custom-format rendering:\n");
                for gene in &individual.genes {
                    source.push_str("; ");
                    source.push_str(&pool.render(gene));
                    source.push('\n');
                }
            }
            fs::write(self.dir.join(name), source)?;
        }
        let saved = SavedPopulation::from_population(population);
        atomic_write(
            &self
                .dir
                .join(format!("population_{:04}.bin", population.generation)),
            &saved.encode(),
        )?;
        Ok(())
    }

    /// Lists saved population files in generation order.
    ///
    /// # Errors
    ///
    /// I/O errors reading the directory.
    pub fn population_files(dir: &Path) -> Result<Vec<PathBuf>, GestError> {
        let mut files: Vec<PathBuf> = fs::read_dir(dir)?
            .filter_map(|entry| entry.ok())
            .map(|entry| entry.path())
            .filter(|path| {
                path.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("population_") && n.ends_with(".bin"))
            })
            .collect();
        // Sort by parsed generation number: lexicographic order breaks once
        // the zero-padded width is exceeded.
        files.sort_by_key(|path| {
            path.file_stem()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_prefix("population_"))
                .and_then(|n| n.parse::<u64>().ok())
                .unwrap_or(u64::MAX)
        });
        Ok(files)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pools::full_pool;
    use gest_ga::Evaluated;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_population(pool: &InstructionPool) -> Population<Gene> {
        let mut rng = StdRng::seed_from_u64(4);
        Population {
            generation: 3,
            individuals: (0..5)
                .map(|i| Evaluated {
                    id: 100 + i,
                    parents: if i == 0 {
                        (None, None)
                    } else {
                        (Some(i), Some(i + 1))
                    },
                    genes: (0..10).map(|_| pool.random_gene(&mut rng)).collect(),
                    fitness: i as f64 * 0.5,
                    measurements: vec![i as f64 * 0.5, 42.0],
                })
                .collect(),
        }
    }

    #[test]
    fn population_binary_round_trip() {
        let pool = full_pool();
        let population = sample_population(&pool);
        let saved = SavedPopulation::from_population(&population);
        let decoded = SavedPopulation::decode(&saved.encode()).unwrap();
        assert_eq!(decoded, saved);
        assert_eq!(decoded.best().unwrap().id, 104);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut enc = Encoder::new();
        enc.bytes(b"NOTAPOPF");
        assert!(matches!(
            SavedPopulation::decode(&enc.into_bytes()),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn seed_genes_rebind_to_pool() {
        let pool = full_pool();
        let population = sample_population(&pool);
        let saved = SavedPopulation::from_population(&population);
        let seeds = saved.seed_genes(&pool);
        assert_eq!(seeds.len(), 5);
        for (seed, original) in seeds.iter().zip(&population.individuals) {
            assert_eq!(
                seed.len(),
                original.genes.len(),
                "same pool keeps all genes"
            );
        }
    }

    #[test]
    fn writer_produces_paper_layout() {
        let pool = full_pool();
        let template = Template::default_stress();
        let population = sample_population(&pool);
        let dir = std::env::temp_dir().join(format!("gest_out_test_{}", std::process::id()));
        let config = GestConfig::builder("cortex-a15").build().unwrap();
        let writer = OutputWriter::new(&dir, &config, &template).unwrap();
        writer
            .save_generation(&population, &pool, &template)
            .unwrap();

        assert!(dir.join("config.xml").exists());
        assert!(dir.join("template.txt").exists());
        assert!(dir.join("population_0003.bin").exists());
        // Individual files follow {gen}_{id}_{m1}_{m2}.txt.
        assert!(dir.join("3_104_2.000_42.000.txt").exists());
        let source = fs::read_to_string(dir.join("3_104_2.000_42.000.txt")).unwrap();
        assert!(source.contains(".loop"));

        let files = OutputWriter::population_files(&dir).unwrap();
        assert_eq!(files.len(), 1);
        let loaded = SavedPopulation::load(&files[0]).unwrap();
        assert_eq!(loaded.generation, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_id_allocator_is_seeded_monotonic_and_collision_free() {
        // Same seed, same id sequence; different seed, different prefix.
        let a = RunIdAllocator::seeded(7);
        let b = RunIdAllocator::seeded(7);
        let first = a.next_id();
        assert_eq!(first, b.next_id());
        assert_ne!(first, a.next_id(), "sequence numbers are monotonic");
        assert_ne!(first, RunIdAllocator::seeded(8).next_id());

        // On-disk allocation skips directories an earlier incarnation of
        // the same allocator already claimed.
        let root = std::env::temp_dir().join(format!("gest_runid_test_{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let earlier = RunIdAllocator::seeded(7);
        let (first_id, first_dir) = earlier.allocate_dir(&root).unwrap();
        let restarted = RunIdAllocator::seeded(7);
        let (second_id, second_dir) = restarted.allocate_dir(&root).unwrap();
        assert_ne!(first_id, second_id);
        assert_ne!(first_dir, second_dir);
        assert!(first_dir.is_dir() && second_dir.is_dir());
        fs::remove_dir_all(&root).unwrap();
    }
}
