//! Specializes the generic GA engine to instruction genes.

use gest_ga::Genetics;
use gest_isa::{Gene, InstructionPool};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

/// [`Genetics`] over an [`InstructionPool`]: random genes are random
/// instruction instantiations; mutation follows the paper's Figure 3 —
/// either the whole instruction is replaced or one operand is re-sampled.
#[derive(Debug, Clone)]
pub struct PoolGenetics {
    pool: Arc<InstructionPool>,
    /// Probability that a mutation replaces the whole instruction (the
    /// remainder mutates a single operand).
    whole_instruction_prob: f64,
}

impl PoolGenetics {
    /// Creates genetics over a pool with the default 50/50
    /// whole-instruction vs operand mutation split.
    pub fn new(pool: Arc<InstructionPool>) -> PoolGenetics {
        PoolGenetics {
            pool,
            whole_instruction_prob: 0.5,
        }
    }

    /// Overrides the whole-instruction mutation probability.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1]`.
    pub fn with_whole_instruction_prob(mut self, prob: f64) -> PoolGenetics {
        assert!(
            (0.0..=1.0).contains(&prob),
            "probability {prob} outside [0,1]"
        );
        self.whole_instruction_prob = prob;
        self
    }

    /// The underlying pool.
    pub fn pool(&self) -> &Arc<InstructionPool> {
        &self.pool
    }
}

impl Genetics for PoolGenetics {
    type Gene = Gene;

    fn random_gene(&self, rng: &mut StdRng) -> Gene {
        self.pool.random_gene(rng)
    }

    fn mutate_gene(&self, gene: &mut Gene, rng: &mut StdRng) {
        if rng.random_bool(self.whole_instruction_prob) {
            self.pool.mutate_whole(gene, rng);
        } else {
            self.pool.mutate_operand(gene, rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pools::full_pool;
    use rand::SeedableRng;

    #[test]
    fn random_genes_are_valid() {
        let genetics = PoolGenetics::new(Arc::new(full_pool()));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let gene = genetics.random_gene(&mut rng);
            assert!(genetics.pool().match_def_seq(&gene.instrs).is_some());
        }
    }

    #[test]
    fn operand_only_mutation_keeps_opcode() {
        let genetics = PoolGenetics::new(Arc::new(full_pool())).with_whole_instruction_prob(0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut gene = genetics.random_gene(&mut rng);
        let opcode = gene.first().opcode();
        for _ in 0..50 {
            genetics.mutate_gene(&mut gene, &mut rng);
            assert_eq!(
                gene.first().opcode(),
                opcode,
                "operand mutation must keep the opcode"
            );
        }
    }

    #[test]
    fn whole_mutation_eventually_changes_opcode() {
        let genetics = PoolGenetics::new(Arc::new(full_pool())).with_whole_instruction_prob(1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut gene = genetics.random_gene(&mut rng);
        let original = gene.first().opcode();
        let mut changed = false;
        for _ in 0..50 {
            genetics.mutate_gene(&mut gene, &mut rng);
            if gene.first().opcode() != original {
                changed = true;
                break;
            }
        }
        assert!(
            changed,
            "50 whole-instruction mutations never changed the opcode"
        );
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bad_probability_panics() {
        let _ = PoolGenetics::new(Arc::new(full_pool())).with_whole_instruction_prob(1.5);
    }
}
