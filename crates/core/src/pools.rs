//! Default instruction pools, shipped like the paper's example
//! configurations ("in the framework release we include measurement
//! scripts and fitness functions that can be used for power, IPC, dI/dt
//! noise and instruction-stream simplicity optimization", §IV).
//!
//! The pools encode the paper's §III.B.1 guidance:
//!
//! * the memory base register (`x10`) is its own single-value operand
//!   class, so generated addresses always stay inside the scratch buffer;
//! * the registers loads write (`x11`–`x13`) are disjoint from the ALU
//!   operand registers (`x0`–`x7`), so integer instructions never depend on
//!   loads ("to avoid integer instructions depending on memory loads the
//!   user can specify two disjoint sets of integer register operands");
//! * branch skip distances are small forward hops.

use gest_isa::{
    InstructionDef, InstructionPool, Opcode, OperandDef, OperandKind, PoolBuilder, Reg, VReg,
};

fn int_regs(range: std::ops::RangeInclusive<u8>) -> OperandKind {
    OperandKind::IntReg(range.map(|i| Reg::new(i).expect("index < 16")).collect())
}

fn vec_regs(range: std::ops::RangeInclusive<u8>) -> OperandKind {
    OperandKind::VecReg(range.map(|i| VReg::new(i).expect("index < 16")).collect())
}

fn base_builder() -> PoolBuilder {
    PoolBuilder::new()
        // ALU operand registers (initialized to checkerboards by the
        // default template).
        .operand(OperandDef::new("int_op", int_regs(0..=7)))
        // Destinations for loads, disjoint from ALU sources.
        .operand(OperandDef::new("mem_result", int_regs(11..=13)))
        // Single base register, kept pointing at the scratch buffer.
        .operand(OperandDef::new("mem_base", int_regs(10..=10)))
        // The paper's Figure 4 example range: 0..256 stride 8.
        .operand(OperandDef::new(
            "mem_offset",
            OperandKind::Imm {
                min: 0,
                max: 256,
                stride: 8,
            },
        ))
        .operand(OperandDef::new(
            "shift_amount",
            OperandKind::Imm {
                min: 1,
                max: 31,
                stride: 1,
            },
        ))
        .operand(OperandDef::new(
            "small_imm",
            OperandKind::Imm {
                min: 0,
                max: 64,
                stride: 1,
            },
        ))
        .operand(OperandDef::new("vec_op", vec_regs(0..=7)))
        .operand(OperandDef::new("vec_acc", vec_regs(8..=15)))
        .operand(OperandDef::new(
            "skip",
            OperandKind::BranchOffset { min: 1, max: 3 },
        ))
}

fn with_int_ops(builder: PoolBuilder) -> PoolBuilder {
    builder
        .instruction(InstructionDef::new(
            "ADD",
            Opcode::Add,
            ["int_op", "int_op", "int_op"],
        ))
        .instruction(InstructionDef::new(
            "SUB",
            Opcode::Sub,
            ["int_op", "int_op", "int_op"],
        ))
        .instruction(InstructionDef::new(
            "AND",
            Opcode::And,
            ["int_op", "int_op", "int_op"],
        ))
        .instruction(InstructionDef::new(
            "ORR",
            Opcode::Orr,
            ["int_op", "int_op", "int_op"],
        ))
        .instruction(InstructionDef::new(
            "EOR",
            Opcode::Eor,
            ["int_op", "int_op", "int_op"],
        ))
        .instruction(InstructionDef::new(
            "ADDI",
            Opcode::Addi,
            ["int_op", "int_op", "small_imm"],
        ))
        .instruction(InstructionDef::new(
            "LSL",
            Opcode::Lsl,
            ["int_op", "int_op", "shift_amount"],
        ))
        .instruction(InstructionDef::new(
            "LSR",
            Opcode::Lsr,
            ["int_op", "int_op", "shift_amount"],
        ))
}

fn with_long_int_ops(builder: PoolBuilder) -> PoolBuilder {
    builder
        .instruction(InstructionDef::new(
            "MUL",
            Opcode::Mul,
            ["int_op", "int_op", "int_op"],
        ))
        .instruction(InstructionDef::new(
            "MLA",
            Opcode::Mla,
            ["int_op", "int_op", "int_op", "int_op"],
        ))
        .instruction(InstructionDef::new(
            "SMULH",
            Opcode::Smulh,
            ["int_op", "int_op", "int_op"],
        ))
        .instruction(InstructionDef::new(
            "SDIV",
            Opcode::Sdiv,
            ["int_op", "int_op", "int_op"],
        ))
}

fn with_fp_ops(builder: PoolBuilder) -> PoolBuilder {
    builder
        .instruction(InstructionDef::new(
            "FADD",
            Opcode::Fadd,
            ["vec_acc", "vec_op", "vec_op"],
        ))
        .instruction(InstructionDef::new(
            "FMUL",
            Opcode::Fmul,
            ["vec_acc", "vec_op", "vec_op"],
        ))
        .instruction(InstructionDef::new(
            "FMLA",
            Opcode::Fmla,
            ["vec_acc", "vec_op", "vec_op"],
        ))
        .instruction(InstructionDef::new(
            "VFADD",
            Opcode::Vfadd,
            ["vec_acc", "vec_op", "vec_op"],
        ))
        .instruction(InstructionDef::new(
            "VFMUL",
            Opcode::Vfmul,
            ["vec_acc", "vec_op", "vec_op"],
        ))
        .instruction(InstructionDef::new(
            "VFMLA",
            Opcode::Vfmla,
            ["vec_acc", "vec_op", "vec_op"],
        ))
        .instruction(InstructionDef::new(
            "VEOR",
            Opcode::Veor,
            ["vec_acc", "vec_op", "vec_op"],
        ))
        .instruction(InstructionDef::new(
            "VMUL",
            Opcode::Vmul,
            ["vec_acc", "vec_op", "vec_op"],
        ))
}

fn with_mem_ops(builder: PoolBuilder) -> PoolBuilder {
    builder
        .instruction(InstructionDef {
            name: "LDR".into(),
            parts: vec![gest_isa::InstructionPart::new(
                Opcode::Ldr,
                ["mem_result", "mem_base", "mem_offset"],
            )],
            format: Some("LDR op1,[op2,#op3]".into()),
        })
        .instruction(InstructionDef::new(
            "STR",
            Opcode::Str,
            ["int_op", "mem_base", "mem_offset"],
        ))
        .instruction(InstructionDef::new(
            "LDP",
            Opcode::Ldp,
            ["mem_result", "mem_result", "mem_base", "mem_offset"],
        ))
        .instruction(InstructionDef::new(
            "VLDR",
            Opcode::Vldr,
            ["vec_acc", "mem_base", "mem_offset"],
        ))
        .instruction(InstructionDef::new(
            "VSTR",
            Opcode::Vstr,
            ["vec_op", "mem_base", "mem_offset"],
        ))
}

fn with_branch_ops(builder: PoolBuilder) -> PoolBuilder {
    builder
        .instruction(InstructionDef::new("B", Opcode::B, ["skip"]))
        .instruction(InstructionDef::new("CBZ", Opcode::Cbz, ["int_op", "skip"]))
        .instruction(InstructionDef::new(
            "CBNZ",
            Opcode::Cbnz,
            ["int_op", "skip"],
        ))
}

/// The full default pool: every instruction category (power and
/// temperature searches use this — the GA decides the mix).
pub fn full_pool() -> InstructionPool {
    with_branch_ops(with_mem_ops(with_fp_ops(with_long_int_ops(with_int_ops(
        base_builder(),
    )))))
    .build()
    .expect("default pool is statically valid")
}

/// Alias of [`full_pool`]: power searches get the whole menu.
pub fn power_pool() -> InstructionPool {
    full_pool()
}

/// IPC-search pool: long-latency integer ops are left in deliberately —
/// the paper observes the GA eliminates them on its own ("after few
/// generations the DIV instruction will most probably be eliminated").
pub fn ipc_pool() -> InstructionPool {
    full_pool()
}

/// dI/dt-search pool: the full menu plus nothing extra — the low/high
/// activity phases come from the mix of serial (accumulator-chained,
/// divide) and wide (independent FP/SIMD) instructions the GA arranges.
pub fn didt_pool() -> InstructionPool {
    full_pool()
}

/// LLC/DRAM-stress pool (paper §VII: "providing in the input file
/// load/store instruction definitions with various strides, base memory
/// registers and various min-max immediate values"): the usual menu plus
/// far-striding loads/stores and a pointer-advance instruction, so the GA
/// can construct access patterns that defeat the L1. Use with a machine
/// whose scratch buffer exceeds L1 and the `cache_miss` measurement.
pub fn llc_pool() -> InstructionPool {
    let builder = base_builder()
        // Strides covering a 256 KiB window at line granularity.
        .operand(OperandDef::new(
            "far_offset",
            OperandKind::Imm {
                min: 0,
                max: 256 * 1024,
                stride: 64,
            },
        ))
        // Pointer-advance amounts: one line up to 4 KiB.
        .operand(OperandDef::new(
            "advance",
            OperandKind::Imm {
                min: 64,
                max: 4096,
                stride: 64,
            },
        ));
    let builder = with_branch_ops(with_mem_ops(with_fp_ops(with_int_ops(builder))))
        .instruction(InstructionDef::new(
            "LDR_far",
            Opcode::Ldr,
            ["mem_result", "mem_base", "far_offset"],
        ))
        .instruction(InstructionDef::new(
            "VLDR_far",
            Opcode::Vldr,
            ["vec_acc", "mem_base", "far_offset"],
        ))
        .instruction(InstructionDef::new(
            "STR_far",
            Opcode::Str,
            ["int_op", "mem_base", "far_offset"],
        ))
        .instruction(InstructionDef::new(
            "ADVANCE",
            Opcode::Addi,
            ["mem_base", "mem_base", "advance"],
        ));
    builder.build().expect("llc pool is statically valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gest_isa::InstrClass;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_pool_builds_and_covers_all_classes() {
        let pool = full_pool();
        let classes: std::collections::HashSet<InstrClass> =
            pool.defs().iter().map(|d| d.opcode().class()).collect();
        for class in [
            InstrClass::ShortInt,
            InstrClass::LongInt,
            InstrClass::FloatSimd,
            InstrClass::Mem,
            InstrClass::Branch,
        ] {
            assert!(classes.contains(&class), "missing {class}");
        }
    }

    #[test]
    fn paper_ldr_variations_preserved() {
        // The shipped LDR definition matches the paper's Figure 4 example:
        // 3 result registers × 1 base × 33 offsets = 99 forms.
        let pool = full_pool();
        let ldr = pool.def_index("LDR").unwrap();
        assert_eq!(pool.variations(ldr), 99);
    }

    #[test]
    fn loads_never_feed_alu_operands() {
        // Disjoint register classes: mem_result (x11-x13) vs int_op (x0-x7).
        let pool = full_pool();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            let gene = pool.random_gene(&mut rng);
            if gene.first().opcode() == Opcode::Ldr || gene.first().opcode() == Opcode::Ldp {
                for dst in gene.first().int_dsts() {
                    assert!(
                        (11..=13).contains(&dst.index()),
                        "load destination {dst} outside mem_result class"
                    );
                }
            }
        }
    }

    #[test]
    fn generated_programs_execute() {
        use gest_isa::{ArchState, Template};
        let pool = full_pool();
        let mut rng = StdRng::seed_from_u64(9);
        let genes: Vec<_> = (0..50).map(|_| pool.random_gene(&mut rng)).collect();
        let body = gest_isa::InstructionPool::flatten(&genes);
        let program = Template::default_stress().materialize("t", body);
        let mut state = ArchState::new(1 << 14);
        program.apply_init(&mut state).unwrap();
        for instr in &program.body {
            instr.execute(&mut state).unwrap();
        }
    }

    #[test]
    fn llc_pool_has_far_strides() {
        let pool = llc_pool();
        let far = pool.def_index("LDR_far").expect("far load exists");
        // 3 dest regs x 1 base x 4097 offsets.
        assert!(pool.variations(far) > 10_000, "{}", pool.variations(far));
        assert!(pool.def_index("ADVANCE").is_some());
        // Programs from the llc pool still execute safely.
        use gest_isa::{ArchState, Template};
        let mut rng = StdRng::seed_from_u64(4);
        let genes: Vec<_> = (0..40).map(|_| pool.random_gene(&mut rng)).collect();
        let body = gest_isa::InstructionPool::flatten(&genes);
        let program = Template::default_stress().materialize("llc", body);
        let mut state = ArchState::new(1 << 20);
        program.apply_init(&mut state).unwrap();
        for instr in &program.body {
            instr.execute(&mut state).unwrap();
        }
    }

    #[test]
    fn total_search_space_is_large() {
        let pool = full_pool();
        assert!(
            pool.total_variations() > 1000,
            "{}",
            pool.total_variations()
        );
    }
}
