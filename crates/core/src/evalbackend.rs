//! Pluggable evaluation backends: *where* a candidate's measurement runs.
//!
//! The paper scales GeST by measuring individuals in parallel across
//! identical boards (§III.C). [`crate::GestRun`] keeps everything that
//! must be deterministic — cache lookups, fitness, the fault policy,
//! result ordering — on the coordinator side and delegates only the raw
//! measurement of one candidate to an [`EvalBackend`]:
//!
//! * [`LocalBackend`] measures in-process on a thread pool (the default,
//!   extracted from the runner's original `std::thread::scope` fan-out);
//! * `gest-dist`'s `Coordinator` ships candidates to remote workers over
//!   TCP and implements the same trait.
//!
//! Because a backend only turns genes into a measurement vector — a pure
//! function for content-pure measurements — swapping backends can never
//! change the evolved result, only the wall-clock it takes.

use crate::error::GestError;
use crate::measurement::{MeasuredBatch, Measurement};
use gest_isa::{Gene, Template};
use gest_sim::RunResult;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// One candidate measurement to be performed by a backend.
#[derive(Debug, Clone, Copy)]
pub struct EvalRequest<'a> {
    /// Generation index (used for program naming only).
    pub generation: u32,
    /// The candidate's id within the run.
    pub candidate_id: u64,
    /// The candidate's genes; the program content being measured.
    pub genes: &'a [Gene],
}

impl EvalRequest<'_> {
    /// The canonical program name (`{generation}_{id}`), matching the
    /// per-individual source files the framework writes.
    pub fn program_name(&self) -> String {
        format!("{}_{}", self.generation, self.candidate_id)
    }
}

/// Where candidate measurements execute.
///
/// Implementations decide the substrate (local threads, remote workers)
/// and their internal dispatch; the runner owns everything above the raw
/// measurement: caching, in-flight dedup, fitness, retry/quarantine, and
/// deterministic result ordering.
pub trait EvalBackend: Send + Sync + std::fmt::Debug {
    /// Short backend name for telemetry and diagnostics.
    fn name(&self) -> &str;

    /// Number of concurrent measurement slots to drive for `pending`
    /// outstanding candidates (local: threads; remote: workers). The
    /// runner spawns one driver thread per slot.
    fn slots(&self, pending: usize) -> usize;

    /// Measures one candidate, returning the measurement vector and —
    /// when the backend has it locally — the simulator's full result for
    /// telemetry detail. Must be callable concurrently from all slots.
    ///
    /// # Errors
    ///
    /// Measurement or transport failures; the runner's
    /// [`crate::FaultPolicy`] decides whether to retry or quarantine.
    fn measure(
        &self,
        slot: usize,
        request: &EvalRequest<'_>,
    ) -> Result<(Vec<f64>, Option<RunResult>), GestError>;

    /// How many candidates this backend prefers to receive per
    /// [`measure_batch`](EvalBackend::measure_batch) call. `1` (the
    /// default) tells the runner to stay on the single-candidate path;
    /// backends with a genuinely batched substrate (the local simulator's
    /// lockstep lanes) report their lane width so the runner hands them
    /// whole chunks.
    fn lane_width(&self) -> usize {
        1
    }

    /// Measures a batch of candidates on one slot, one result per request,
    /// in order. The default loops [`measure`](EvalBackend::measure), so
    /// every backend — including `gest-dist`'s `Coordinator` and
    /// `gest-chaos`'s wrapper — composes with batch-aware callers without
    /// changes. A failing candidate yields an `Err` in its lane only; the
    /// runner's [`crate::FaultPolicy`] then handles that lane alone.
    fn measure_batch(&self, slot: usize, requests: &[EvalRequest<'_>]) -> MeasuredBatch {
        requests
            .iter()
            .map(|request| self.measure(slot, request))
            .collect()
    }
}

/// Renders a panic payload into a human-readable message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_string()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "evaluation worker panicked".to_string()
    }
}

/// Runs a measurement closure with panic containment: a panicking
/// measurement plug-in becomes a [`GestError::Measurement`] carrying the
/// panic payload instead of aborting the process.
///
/// This is the single home of the panic-to-error plumbing — the runner
/// wraps every backend call in it, and `gest-dist` workers wrap their
/// local measurements in it, so neither side re-implements it.
///
/// # Errors
///
/// The closure's own error, or a [`GestError::Measurement`] when it
/// panicked.
pub fn catch_measure<T>(
    candidate: u64,
    f: impl FnOnce() -> Result<T, GestError>,
) -> Result<T, GestError> {
    catch_unwind(AssertUnwindSafe(f)).unwrap_or_else(|payload| {
        Err(GestError::Measurement {
            candidate,
            message: panic_message(payload),
        })
    })
}

/// Batch counterpart of [`catch_measure`]: a panic anywhere inside the
/// batched call fails *every* lane with the panic payload, because a
/// mid-batch panic leaves no way to tell which lanes completed. The
/// runner then falls back to the single-candidate path per lane, where
/// the fault policy retries each in isolation.
pub(crate) fn catch_measure_batch(
    candidates: &[u64],
    f: impl FnOnce() -> MeasuredBatch,
) -> MeasuredBatch {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(results) => results,
        Err(payload) => {
            let message = panic_message(payload);
            candidates
                .iter()
                .map(|&candidate| {
                    Err(GestError::Measurement {
                        candidate,
                        message: message.clone(),
                    })
                })
                .collect()
        }
    }
}

/// Runs one backend measurement on a sacrificial thread with a hard
/// wall-clock bound. If the measurement does not finish within
/// `watchdog_ms`, the attempt is abandoned — the stuck thread is left to
/// finish (or leak) in the background and the caller gets a
/// [`GestError::Measurement`] immediately, so a wedged measurement
/// plug-in cannot stall its evaluation slot forever. This is the local
/// analogue of `gest-dist`'s heartbeat timeout; the runner uses it
/// whenever [`crate::FaultPolicy::watchdog_ms`] is set.
///
/// # Errors
///
/// The measurement's own error, a [`GestError::Measurement`] carrying a
/// panic payload, or a [`GestError::Measurement`] when the watchdog
/// fires.
pub fn watchdog_measure(
    backend: &Arc<dyn EvalBackend>,
    slot: usize,
    request: &EvalRequest<'_>,
    watchdog_ms: u64,
) -> Result<(Vec<f64>, Option<RunResult>), GestError> {
    let (tx, rx) = mpsc::channel();
    let backend = Arc::clone(backend);
    let genes: Vec<Gene> = request.genes.to_vec();
    let generation = request.generation;
    let candidate_id = request.candidate_id;
    std::thread::Builder::new()
        .name(format!("gest-watchdog-{candidate_id}"))
        .spawn(move || {
            let request = EvalRequest {
                generation,
                candidate_id,
                genes: &genes,
            };
            let result = catch_measure(candidate_id, || backend.measure(slot, &request));
            let _ = tx.send(result);
        })
        .map_err(GestError::Io)?;
    match rx.recv_timeout(Duration::from_millis(watchdog_ms)) {
        Ok(result) => result,
        Err(_) => Err(GestError::Measurement {
            candidate: candidate_id,
            message: format!(
                "measurement still running after the {watchdog_ms}ms watchdog; \
                 attempt abandoned"
            ),
        }),
    }
}

/// The in-process backend: materializes each candidate against the run's
/// template and measures it on the calling slot thread. This is the
/// original `GestRun` thread-pool evaluation, extracted behind
/// [`EvalBackend`].
#[derive(Debug)]
pub struct LocalBackend {
    measurement: Arc<dyn Measurement>,
    template: Template,
    threads: usize,
    lane_width: usize,
}

impl LocalBackend {
    /// Creates a backend over `measurement`; `threads == 0` means one
    /// slot per available CPU.
    pub fn new(measurement: Arc<dyn Measurement>, template: Template, threads: usize) -> Self {
        LocalBackend {
            measurement,
            template,
            threads,
            lane_width: 1,
        }
    }

    /// Sets how many candidates each slot batches through the
    /// measurement's lockstep simulator core per call (`0` and `1` both
    /// mean the single-candidate path). An execution detail like
    /// `threads`: it changes wall-clock, never results.
    #[must_use]
    pub fn with_lane_width(mut self, lane_width: usize) -> Self {
        self.lane_width = lane_width.max(1);
        self
    }

    fn materialize(&self, request: &EvalRequest<'_>) -> gest_isa::Program {
        let body = gest_isa::InstructionPool::flatten(request.genes);
        self.template.materialize(request.program_name(), body)
    }
}

impl EvalBackend for LocalBackend {
    fn name(&self) -> &str {
        "local"
    }

    fn slots(&self, pending: usize) -> usize {
        let threads = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        threads.min(pending.max(1))
    }

    fn measure(
        &self,
        _slot: usize,
        request: &EvalRequest<'_>,
    ) -> Result<(Vec<f64>, Option<RunResult>), GestError> {
        let program = self.materialize(request);
        self.measurement.measure_detailed(&program)
    }

    fn lane_width(&self) -> usize {
        self.lane_width
    }

    fn measure_batch(&self, _slot: usize, requests: &[EvalRequest<'_>]) -> MeasuredBatch {
        let programs: Vec<gest_isa::Program> = requests
            .iter()
            .map(|request| self.materialize(request))
            .collect();
        self.measurement.measure_batch_detailed(&programs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catch_measure_converts_panics() {
        let ok: Result<u32, GestError> = catch_measure(7, || Ok(42));
        assert_eq!(ok.unwrap(), 42);

        let err = catch_measure::<u32>(7, || panic!("probe fell off")).unwrap_err();
        match err {
            GestError::Measurement { candidate, message } => {
                assert_eq!(candidate, 7);
                assert!(message.contains("probe fell off"), "{message}");
            }
            other => panic!("expected measurement error, got {other}"),
        }

        let err = catch_measure::<u32>(3, || {
            std::panic::panic_any(1234_u64);
        })
        .unwrap_err();
        match err {
            GestError::Measurement { message, .. } => {
                assert!(message.contains("panicked"), "{message}");
            }
            other => panic!("expected measurement error, got {other}"),
        }
    }

    #[derive(Debug)]
    struct SleepyBackend {
        sleep_ms: u64,
    }

    impl EvalBackend for SleepyBackend {
        fn name(&self) -> &str {
            "sleepy"
        }

        fn slots(&self, _pending: usize) -> usize {
            1
        }

        fn measure(
            &self,
            _slot: usize,
            request: &EvalRequest<'_>,
        ) -> Result<(Vec<f64>, Option<RunResult>), GestError> {
            std::thread::sleep(Duration::from_millis(self.sleep_ms));
            Ok((vec![request.candidate_id as f64], None))
        }
    }

    #[test]
    fn watchdog_passes_fast_measurements_and_abandons_hangs() {
        let request = EvalRequest {
            generation: 1,
            candidate_id: 9,
            genes: &[],
        };

        let fast: Arc<dyn EvalBackend> = Arc::new(SleepyBackend { sleep_ms: 0 });
        let (values, detail) = watchdog_measure(&fast, 0, &request, 5_000).unwrap();
        assert_eq!(values, vec![9.0]);
        assert!(detail.is_none());

        let slow: Arc<dyn EvalBackend> = Arc::new(SleepyBackend { sleep_ms: 3_000 });
        let err = watchdog_measure(&slow, 0, &request, 50).unwrap_err();
        match err {
            GestError::Measurement { candidate, message } => {
                assert_eq!(candidate, 9);
                assert!(message.contains("watchdog"), "{message}");
            }
            other => panic!("expected measurement error, got {other}"),
        }
    }

    /// Fails odd-id candidates so batch/loop equivalence covers error
    /// lanes too.
    #[derive(Debug)]
    struct ParityBackend;

    impl EvalBackend for ParityBackend {
        fn name(&self) -> &str {
            "parity"
        }

        fn slots(&self, _pending: usize) -> usize {
            1
        }

        fn measure(
            &self,
            slot: usize,
            request: &EvalRequest<'_>,
        ) -> Result<(Vec<f64>, Option<RunResult>), GestError> {
            if request.candidate_id % 2 == 1 {
                return Err(GestError::Measurement {
                    candidate: request.candidate_id,
                    message: "odd lane".into(),
                });
            }
            Ok((vec![request.candidate_id as f64, slot as f64], None))
        }
    }

    #[test]
    fn default_measure_batch_loops_measure_with_per_lane_errors() {
        let backend = ParityBackend;
        assert_eq!(backend.lane_width(), 1, "default stays single-candidate");
        let genes = [];
        let requests: Vec<EvalRequest<'_>> = (0..5)
            .map(|id| EvalRequest {
                generation: 2,
                candidate_id: id,
                genes: &genes,
            })
            .collect();
        let batched = backend.measure_batch(3, &requests);
        assert_eq!(batched.len(), requests.len());
        for (request, lane) in requests.iter().zip(batched) {
            match (lane, backend.measure(3, request)) {
                (Ok(lane), Ok(single)) => assert_eq!(lane, single),
                (Err(GestError::Measurement { candidate, .. }), Err(_)) => {
                    assert_eq!(candidate, request.candidate_id);
                }
                (lane, single) => panic!(
                    "candidate {}: lane ok={} but single ok={}",
                    request.candidate_id,
                    lane.is_ok(),
                    single.is_ok()
                ),
            }
        }
    }

    #[test]
    fn catch_measure_batch_fails_every_lane_on_panic() {
        let candidates = [4, 5, 6];
        let lanes = catch_measure_batch(&candidates, || panic!("batch fell over"));
        assert_eq!(lanes.len(), 3);
        for (lane, &expected) in lanes.iter().zip(&candidates) {
            match lane {
                Err(GestError::Measurement { candidate, message }) => {
                    assert_eq!(*candidate, expected);
                    assert!(message.contains("batch fell over"), "{message}");
                }
                other => panic!("expected per-lane panic error, got {other:?}"),
            }
        }
        let ok = catch_measure_batch(&candidates, || vec![Ok((vec![1.0], None))]);
        assert_eq!(ok.len(), 1, "non-panicking closures pass through");
    }

    #[test]
    fn local_backend_slots_respect_pending_work() {
        let config = crate::GestConfig::builder("cortex-a7").build().unwrap();
        let measurement = crate::Registry::default()
            .build_measurement("power", config.machine.clone(), config.run_config)
            .unwrap();
        let backend = LocalBackend::new(measurement, config.template.clone(), 4);
        assert_eq!(backend.slots(100), 4);
        assert_eq!(backend.slots(2), 2);
        assert_eq!(backend.slots(0), 1, "at least one slot");
        assert_eq!(backend.name(), "local");
    }

    #[test]
    fn local_backend_batches_bit_identically_to_singles() {
        let config = crate::GestConfig::builder("cortex-a7").build().unwrap();
        let measurement = crate::Registry::default()
            .build_measurement("power", config.machine.clone(), config.run_config)
            .unwrap();
        let backend = LocalBackend::new(measurement, config.template.clone(), 1).with_lane_width(4);
        assert_eq!(backend.lane_width(), 4);
        assert_eq!(
            LocalBackend::new(Arc::clone(&backend.measurement), config.template.clone(), 1)
                .with_lane_width(0)
                .lane_width(),
            1,
            "zero clamps to the single path"
        );

        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let gene_sets: Vec<Vec<gest_isa::Gene>> = (0..5)
            .map(|seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                (0..8).map(|_| config.pool.random_gene(&mut rng)).collect()
            })
            .collect();
        let requests: Vec<EvalRequest<'_>> = gene_sets
            .iter()
            .enumerate()
            .map(|(id, genes)| EvalRequest {
                generation: 0,
                candidate_id: id as u64,
                genes,
            })
            .collect();
        let batched = backend.measure_batch(0, &requests);
        assert_eq!(batched.len(), requests.len());
        for (request, lane) in requests.iter().zip(batched) {
            let single = backend.measure(0, request).unwrap();
            let lane = lane.unwrap();
            assert_eq!(lane.0, single.0, "candidate {}", request.candidate_id);
            assert_eq!(lane.1, single.1, "candidate {}", request.candidate_id);
        }
    }
}
