//! Online surrogate fitness model for screened evaluation.
//!
//! At production scale most candidates a GA breeds are *novel*, so the
//! content-addressed eval cache never pays for them and every one costs a
//! full simulation. This module learns a cheap stand-in: an incremental
//! ridge regression from genome features ([`gest_isa::features`]) to
//! measured fitness, trained on every `(features → fitness)` pair the run
//! produces. The runner ranks each freshly bred generation by predicted
//! fitness, fully simulates only the top-K plus a seeded exploration
//! quota, and assigns calibrated surrogate fitness to the rest — but only
//! once a *confidence gate* opens: while the rolling Spearman rank
//! correlation between predictions and measurements is below threshold
//! (or too few samples exist), every candidate is still fully simulated.
//!
//! Determinism: the model is plain `f64` arithmetic updated on the
//! runner's main thread in canonical candidate order, its weights are
//! refit once per generation by Gaussian elimination (no iterative or
//! randomized solver), and its full state round-trips through a
//! `GESTSUR1` sidecar written at every checkpoint — so same-seed
//! surrogate runs are byte-identical to each other at any thread count or
//! lane width, and a resumed run continues exactly where the model left
//! off.

use crate::error::GestError;
use crate::output::WriteFs;
use gest_isa::codec::{Decoder, Encoder};
use gest_isa::features::{FeatureVec, FEATURE_DIM};
use std::collections::VecDeque;
use std::path::Path;

/// Sidecar magic ("GESTSUR" + format version).
const MAGIC: &[u8] = b"GESTSUR1";
/// Bumped when the encoding below changes shape.
const VERSION: u32 = 1;
/// File name of the model sidecar inside a run's output directory.
pub const SURROGATE_FILE: &str = "surrogate.bin";

/// Ridge regularizer: keeps the normal equations positive definite (the
/// solve can never hit a zero pivot) and shrinks weights while the sample
/// count is small. Features are normalized to `[0, 1]`, so a fixed small
/// value suits every machine/measurement combination.
const RIDGE_LAMBDA: f64 = 1e-3;

/// Rolling window of `(predicted, actual)` pairs backing the Spearman
/// estimate and the affine calibration. Big enough to span several
/// generations at paper-scale population sizes, small enough that the
/// per-generation rank computation stays negligible.
const PAIR_WINDOW: usize = 256;

/// Confidence gate: screening only activates while the rolling Spearman
/// rank correlation is at least this. Below it the model's ranking cannot
/// be trusted and the run degrades to 100% full simulation.
pub const SPEARMAN_GATE: f64 = 0.6;

/// How the runner uses the surrogate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SurrogateMode {
    /// No surrogate: every candidate is fully simulated (the default;
    /// existing byte-identity suites are untouched).
    #[default]
    Off,
    /// Screen each bred generation: simulate the top-K predicted
    /// candidates plus an exploration quota, assign calibrated surrogate
    /// fitness to the rest.
    Screen,
}

/// Execution-style surrogate knobs. Like `threads` and `lane_width`,
/// these are *not* serialized to `config.xml` and do not perturb the
/// configuration fingerprint; the CLI and builders override them per
/// invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurrogateOptions {
    /// Off (default) or screening.
    pub mode: SurrogateMode,
    /// Candidates fully simulated per generation when screening
    /// (`0` = auto: a quarter of the population, at least one).
    pub topk: usize,
    /// Exploration quota: screened-out candidates still fully simulated,
    /// drawn by a seeded reservoir so the model keeps learning outside
    /// its own top picks.
    pub explore: usize,
}

impl Default for SurrogateOptions {
    fn default() -> SurrogateOptions {
        SurrogateOptions {
            mode: SurrogateMode::Off,
            topk: 0,
            explore: 2,
        }
    }
}

/// The incremental ridge-regression surrogate.
///
/// Accumulates the normal equations `XᵀX` / `Xᵀy` one observation at a
/// time and refits exact weights once per generation. All state needed to
/// continue bit-identically — including the rolling prediction window —
/// round-trips through [`SurrogateModel::encode`].
#[derive(Debug, Clone)]
pub struct SurrogateModel {
    /// `XᵀX` accumulation (dense, symmetric, FEATURE_DIM²).
    xtx: Vec<f64>,
    /// `Xᵀy` accumulation.
    xty: [f64; FEATURE_DIM],
    /// Last fitted weights (all zero until the first [`fit`](Self::fit)).
    weights: [f64; FEATURE_DIM],
    /// Observations accumulated so far.
    samples: u64,
    /// Rolling `(predicted, actual)` pairs, oldest first.
    pairs: VecDeque<(f64, f64)>,
}

impl Default for SurrogateModel {
    fn default() -> SurrogateModel {
        SurrogateModel::new()
    }
}

impl SurrogateModel {
    /// An empty model: zero weights, no observations.
    pub fn new() -> SurrogateModel {
        SurrogateModel {
            xtx: vec![0.0; FEATURE_DIM * FEATURE_DIM],
            xty: [0.0; FEATURE_DIM],
            weights: [0.0; FEATURE_DIM],
            samples: 0,
            pairs: VecDeque::new(),
        }
    }

    /// Observations accumulated so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Folds one measured pair into the normal equations. Callers must
    /// invoke this in canonical candidate order on one thread — f64
    /// accumulation order is part of the deterministic state.
    pub fn observe(&mut self, features: &FeatureVec, fitness: f64) {
        for row in 0..FEATURE_DIM {
            for col in 0..FEATURE_DIM {
                self.xtx[row * FEATURE_DIM + col] += features[row] * features[col];
            }
            self.xty[row] += features[row] * fitness;
        }
        self.samples += 1;
    }

    /// Records an out-of-sample `(predicted, actual)` pair into the
    /// rolling window backing [`spearman`](Self::spearman) and the
    /// calibration. The prediction must have been made *before* the
    /// actual value was observed by [`observe`](Self::observe), so the
    /// window estimates genuine generalization, not training fit.
    pub fn record_pair(&mut self, predicted: f64, actual: f64) {
        if self.pairs.len() == PAIR_WINDOW {
            self.pairs.pop_front();
        }
        self.pairs.push_back((predicted, actual));
    }

    /// Refits the weights from the accumulated normal equations by
    /// Gaussian elimination with partial pivoting on
    /// `XᵀX + λI` (positive definite by construction). O(D³) with D=16 —
    /// microseconds, run once per generation.
    pub fn fit(&mut self) {
        if self.samples == 0 {
            return;
        }
        let d = FEATURE_DIM;
        let mut a = self.xtx.clone();
        for i in 0..d {
            a[i * d + i] += RIDGE_LAMBDA;
        }
        let mut b = self.xty;
        for col in 0..d {
            let pivot_row = (col..d)
                .max_by(|&x, &y| a[x * d + col].abs().total_cmp(&a[y * d + col].abs()))
                .expect("non-empty range");
            if pivot_row != col {
                for k in 0..d {
                    a.swap(col * d + k, pivot_row * d + k);
                }
                b.swap(col, pivot_row);
            }
            let pivot = a[col * d + col];
            if pivot.abs() < 1e-12 {
                continue;
            }
            for row in (col + 1)..d {
                let factor = a[row * d + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for k in col..d {
                    a[row * d + k] -= factor * a[col * d + k];
                }
                b[row] -= factor * b[col];
            }
        }
        let mut weights = [0.0; FEATURE_DIM];
        for col in (0..d).rev() {
            let mut value = b[col];
            for k in (col + 1)..d {
                value -= a[col * d + k] * weights[k];
            }
            let pivot = a[col * d + col];
            weights[col] = if pivot.abs() < 1e-12 {
                0.0
            } else {
                value / pivot
            };
        }
        self.weights = weights;
    }

    /// Raw predicted fitness under the current weights (zero before the
    /// first fit). Used for *ranking* candidates; see
    /// [`calibrated`](Self::calibrated) for assignable values.
    pub fn predict(&self, features: &FeatureVec) -> f64 {
        features.iter().zip(&self.weights).map(|(x, w)| x * w).sum()
    }

    /// Calibrates a raw prediction into the measured-fitness scale: an
    /// affine least-squares map `actual ≈ a·predicted + b` fitted over
    /// the rolling window, clamped to the window's observed
    /// `[min, max]` actual range. The clamp guarantees a surrogate-scored
    /// candidate can never claim a fitness above anything actually
    /// measured — predicted values may steer selection, but cannot
    /// fabricate a new best.
    pub fn calibrated(&self, predicted: f64) -> f64 {
        if self.pairs.is_empty() {
            return predicted;
        }
        let n = self.pairs.len() as f64;
        let (mut sum_p, mut sum_a, mut sum_pp, mut sum_pa) = (0.0, 0.0, 0.0, 0.0);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(p, a) in &self.pairs {
            sum_p += p;
            sum_a += a;
            sum_pp += p * p;
            sum_pa += p * a;
            lo = lo.min(a);
            hi = hi.max(a);
        }
        let denom = n * sum_pp - sum_p * sum_p;
        let value = if denom.abs() < 1e-12 {
            sum_a / n
        } else {
            let slope = (n * sum_pa - sum_p * sum_a) / denom;
            let intercept = (sum_a - slope * sum_p) / n;
            slope * predicted + intercept
        };
        value.clamp(lo, hi)
    }

    /// Spearman rank correlation over the rolling window (`None` while
    /// fewer than two pairs exist or either side has no rank variance).
    pub fn spearman(&self) -> Option<f64> {
        if self.pairs.len() < 2 {
            return None;
        }
        let predicted: Vec<f64> = self.pairs.iter().map(|&(p, _)| p).collect();
        let actual: Vec<f64> = self.pairs.iter().map(|&(_, a)| a).collect();
        pearson(&ranks(&predicted), &ranks(&actual))
    }

    /// Whether the confidence gate is open: enough samples to have seen
    /// the search space (`min_samples`) *and* a trustworthy rolling rank
    /// correlation.
    pub fn gate_open(&self, min_samples: u64) -> bool {
        self.samples >= min_samples && self.spearman().is_some_and(|rho| rho >= SPEARMAN_GATE)
    }

    /// Serializes the full model state, stamped with the run's
    /// configuration fingerprint and the checkpoint generation it
    /// accompanies.
    pub fn encode(&self, config_fp: u64, generation: u32) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.bytes(MAGIC);
        enc.u32(VERSION);
        enc.u64(config_fp);
        enc.u32(generation);
        enc.u32(FEATURE_DIM as u32);
        for &value in &self.xtx {
            enc.f64(value);
        }
        for &value in &self.xty {
            enc.f64(value);
        }
        for &value in &self.weights {
            enc.f64(value);
        }
        enc.u64(self.samples);
        enc.varint(self.pairs.len() as u64);
        for &(predicted, actual) in &self.pairs {
            enc.f64(predicted);
            enc.f64(actual);
        }
        enc.into_bytes()
    }

    /// Decodes a sidecar produced by [`encode`](Self::encode), returning
    /// the stamped `(config_fp, generation)` alongside the model.
    ///
    /// # Errors
    ///
    /// [`GestError::Config`] on a bad magic/version/dimension; codec
    /// errors on truncation.
    pub fn decode(bytes: &[u8]) -> Result<(u64, u32, SurrogateModel), GestError> {
        let mut dec = Decoder::new(bytes);
        let magic = dec.bytes()?;
        if magic != MAGIC {
            return Err(GestError::Config(
                "surrogate sidecar: bad magic (not a GESTSUR1 file)".into(),
            ));
        }
        let version = dec.u32()?;
        if version != VERSION {
            return Err(GestError::Config(format!(
                "surrogate sidecar: unsupported version {version}"
            )));
        }
        let config_fp = dec.u64()?;
        let generation = dec.u32()?;
        let dim = dec.u32()? as usize;
        if dim != FEATURE_DIM {
            return Err(GestError::Config(format!(
                "surrogate sidecar: feature dimension {dim} != {FEATURE_DIM}"
            )));
        }
        let mut model = SurrogateModel::new();
        for value in model.xtx.iter_mut() {
            *value = dec.f64()?;
        }
        for value in model.xty.iter_mut() {
            *value = dec.f64()?;
        }
        for value in model.weights.iter_mut() {
            *value = dec.f64()?;
        }
        model.samples = dec.u64()?;
        let pairs = dec.varint()? as usize;
        if pairs > PAIR_WINDOW {
            return Err(GestError::Config(format!(
                "surrogate sidecar: window of {pairs} pairs exceeds the cap"
            )));
        }
        for _ in 0..pairs {
            let predicted = dec.f64()?;
            let actual = dec.f64()?;
            model.pairs.push_back((predicted, actual));
        }
        Ok((config_fp, generation, model))
    }

    /// Writes the sidecar atomically into a run's output directory.
    ///
    /// # Errors
    ///
    /// I/O errors from the [`WriteFs`].
    pub fn save_via(
        &self,
        dir: &Path,
        fs: &dyn WriteFs,
        config_fp: u64,
        generation: u32,
    ) -> Result<(), GestError> {
        fs.write_atomic(
            &dir.join(SURROGATE_FILE),
            &self.encode(config_fp, generation),
        )
        .map_err(GestError::from)
    }

    /// Loads the sidecar from a run's output directory, validating its
    /// fingerprint and generation stamp. Returns `None` (best-effort,
    /// with a stderr warning) when the file is absent, corrupt, or stale
    /// — the caller then warm-starts the model from the restored
    /// population instead.
    pub fn load(dir: &Path, config_fp: u64, generation: u32) -> Option<SurrogateModel> {
        let path = dir.join(SURROGATE_FILE);
        let bytes = std::fs::read(&path).ok()?;
        match SurrogateModel::decode(&bytes) {
            Ok((fp, stamped, model)) if fp == config_fp && stamped == generation => Some(model),
            Ok((fp, stamped, _)) => {
                eprintln!(
                    "gest: surrogate sidecar {} is stale (fingerprint {fp:016x} at \
                     generation {stamped}, expected {config_fp:016x} at {generation}); \
                     warm-starting the model from the restored population",
                    path.display()
                );
                None
            }
            Err(error) => {
                eprintln!(
                    "gest: surrogate sidecar {} is unreadable ({error}); \
                     warm-starting the model from the restored population",
                    path.display()
                );
                None
            }
        }
    }
}

/// Fractional ranks (1-based) with tie-averaging, the standard Spearman
/// pre-pass.
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]).then(a.cmp(&b)));
    let mut out = vec![0.0; values.len()];
    let mut start = 0;
    while start < order.len() {
        let mut end = start + 1;
        while end < order.len() && values[order[end]] == values[order[start]] {
            end += 1;
        }
        // Average rank of the tied block: ranks are 1-based.
        let rank = (start + 1 + end) as f64 / 2.0;
        for &index in &order[start..end] {
            out[index] = rank;
        }
        start = end;
    }
    out
}

/// Pearson correlation; `None` when either side has no variance.
fn pearson(a: &[f64], b: &[f64]) -> Option<f64> {
    let n = a.len() as f64;
    let mean_a = a.iter().sum::<f64>() / n;
    let mean_b = b.iter().sum::<f64>() / n;
    let (mut cov, mut var_a, mut var_b) = (0.0, 0.0, 0.0);
    for (&x, &y) in a.iter().zip(b) {
        let (dx, dy) = (x - mean_a, y - mean_b);
        cov += dx * dy;
        var_a += dx * dx;
        var_b += dy * dy;
    }
    if var_a < 1e-12 || var_b < 1e-12 {
        return None;
    }
    Some(cov / (var_a * var_b).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feature(values: &[(usize, f64)]) -> FeatureVec {
        let mut x = [0.0; FEATURE_DIM];
        x[FEATURE_DIM - 1] = 1.0;
        for &(index, value) in values {
            x[index] = value;
        }
        x
    }

    #[test]
    fn learns_a_linear_relationship() {
        let mut model = SurrogateModel::new();
        // fitness = 3*x0 + 1, sampled at a few points.
        for i in 0..20 {
            let x = f64::from(i) / 20.0;
            model.observe(&feature(&[(0, x)]), 3.0 * x + 1.0);
        }
        model.fit();
        let predicted = model.predict(&feature(&[(0, 0.5)]));
        assert!((predicted - 2.5).abs() < 0.05, "{predicted}");
    }

    #[test]
    fn spearman_tracks_rank_agreement() {
        let mut model = SurrogateModel::new();
        for i in 0..32 {
            let v = f64::from(i);
            model.record_pair(v, v * 2.0 + 1.0); // perfectly monotone
        }
        assert!((model.spearman().unwrap() - 1.0).abs() < 1e-9);

        let mut anti = SurrogateModel::new();
        for i in 0..32 {
            anti.record_pair(f64::from(i), f64::from(-i));
        }
        assert!((anti.spearman().unwrap() + 1.0).abs() < 1e-9);
    }

    #[test]
    fn gate_needs_samples_and_correlation() {
        let mut model = SurrogateModel::new();
        assert!(!model.gate_open(4));
        for i in 0..8 {
            let v = f64::from(i);
            model.observe(&feature(&[(0, v / 8.0)]), v);
            model.record_pair(v, v);
        }
        assert!(model.gate_open(4));
        assert!(!model.gate_open(100), "sample floor still applies");
    }

    #[test]
    fn calibration_clamps_to_observed_fitness() {
        let mut model = SurrogateModel::new();
        for i in 0..16 {
            let v = f64::from(i);
            model.record_pair(v, v); // identity map, actuals in [0, 15]
        }
        assert!(model.calibrated(100.0) <= 15.0);
        assert!(model.calibrated(-5.0) >= 0.0);
        let mid = model.calibrated(7.0);
        assert!((mid - 7.0).abs() < 1e-9, "{mid}");
    }

    #[test]
    fn encode_decode_roundtrips_bit_exactly() {
        let mut model = SurrogateModel::new();
        for i in 0..10 {
            let v = f64::from(i) / 3.0;
            model.observe(&feature(&[(0, v), (3, 1.0 - v)]), v * 7.0);
            model.record_pair(v, v * 7.0 + 0.1);
        }
        model.fit();
        let bytes = model.encode(0xfeed, 4);
        let (fp, generation, restored) = SurrogateModel::decode(&bytes).unwrap();
        assert_eq!((fp, generation), (0xfeed, 4));
        assert_eq!(restored.encode(0xfeed, 4), bytes);
        for (a, b) in model.weights.iter().zip(&restored.weights) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(model.samples, restored.samples);
        assert_eq!(model.pairs, restored.pairs);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(SurrogateModel::decode(b"not a sidecar").is_err());
        let bytes = SurrogateModel::new().encode(1, 0);
        assert!(SurrogateModel::decode(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }
}
