//! Property-based tests for the GA engine: the genetic operators must
//! uphold their structural invariants for arbitrary inputs, and the engine
//! must stay deterministic and size-stable.

use gest_ga::{
    crossover_one_point, crossover_uniform, mutate, tournament_select, Evaluated, GaConfig,
    GaEngine, Genetics, Population,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Bytes;

impl Genetics for Bytes {
    type Gene = u8;
    fn random_gene(&self, rng: &mut StdRng) -> u8 {
        rng.random()
    }
    fn mutate_gene(&self, gene: &mut u8, rng: &mut StdRng) {
        *gene = rng.random();
    }
}

fn evaluated(genes: Vec<Vec<u8>>, fitnesses: Vec<f64>) -> Vec<Evaluated<u8>> {
    genes
        .into_iter()
        .zip(fitnesses)
        .enumerate()
        .map(|(i, (genes, fitness))| Evaluated {
            id: i as u64,
            parents: (None, None),
            genes,
            fitness,
            measurements: vec![],
        })
        .collect()
}

proptest! {
    #[test]
    fn one_point_children_are_positionwise_exchanges(
        parents in prop::collection::vec(any::<(u8, u8)>(), 1..64),
        seed in any::<u64>(),
    ) {
        let p1: Vec<u8> = parents.iter().map(|p| p.0).collect();
        let p2: Vec<u8> = parents.iter().map(|p| p.1).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let (c1, c2) = crossover_one_point(&p1, &p2, &mut rng);
        prop_assert_eq!(c1.len(), p1.len());
        prop_assert_eq!(c2.len(), p1.len());
        let mut switches = 0;
        let mut from_p1 = true;
        for i in 0..p1.len() {
            let pair = (c1[i], c2[i]);
            prop_assert!(pair == (p1[i], p2[i]) || pair == (p2[i], p1[i]), "slot {i}");
            // Count head/tail switches when genes are distinguishable.
            if p1[i] != p2[i] {
                let now_from_p1 = c1[i] == p1[i];
                if now_from_p1 != from_p1 && i > 0 {
                    switches += 1;
                }
                from_p1 = now_from_p1;
            }
        }
        // One-point crossover changes provenance at most once (modulo
        // indistinguishable positions); the first distinguishable slot may
        // itself register as a switch since `from_p1` starts arbitrary.
        prop_assert!(switches <= 2, "one-point must not interleave: {switches} switches");
    }

    #[test]
    fn uniform_children_are_positionwise_exchanges(
        parents in prop::collection::vec(any::<(u8, u8)>(), 0..64),
        seed in any::<u64>(),
    ) {
        let p1: Vec<u8> = parents.iter().map(|p| p.0).collect();
        let p2: Vec<u8> = parents.iter().map(|p| p.1).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let (c1, c2) = crossover_uniform(&p1, &p2, &mut rng);
        for i in 0..p1.len() {
            let pair = (c1[i], c2[i]);
            prop_assert!(pair == (p1[i], p2[i]) || pair == (p2[i], p1[i]));
        }
    }

    #[test]
    fn tournament_never_picks_out_of_range(
        fitnesses in prop::collection::vec(-1e6f64..1e6, 1..40),
        size in 1usize..12,
        seed in any::<u64>(),
    ) {
        let genes = vec![vec![0u8]; fitnesses.len()];
        let population = evaluated(genes, fitnesses.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            let pick = tournament_select(&population, size, &mut rng);
            prop_assert!(pick < population.len());
        }
    }

    #[test]
    fn big_tournament_picks_the_maximum(
        fitnesses in prop::collection::vec(0f64..1e6, 2..20),
        seed in any::<u64>(),
    ) {
        // With tournament size >> population and distinct fitnesses, the
        // winner is (almost surely) the max; verify the winner is never
        // *worse* than the median as a robust check.
        let population = evaluated(vec![vec![0u8]; fitnesses.len()], fitnesses.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let pick = tournament_select(&population, 2048, &mut rng);
        let best = fitnesses.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // 2048 draws over <=20 individuals: P(missing the max) < 1e-45.
        prop_assert_eq!(population[pick].fitness, best);
    }

    #[test]
    fn mutation_count_is_bounded(
        len in 1usize..128,
        rate in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let mut genes = vec![0u8; len];
        let mut rng = StdRng::seed_from_u64(seed);
        let mutated = mutate(&mut genes, rate, &mut rng, |g, rng| *g = rng.random());
        prop_assert!(mutated <= len);
        if rate == 0.0 {
            prop_assert_eq!(mutated, 0);
        }
    }

    #[test]
    fn engine_generations_preserve_shape(
        pop_size in 2usize..24,
        individual in 1usize..16,
        seed in any::<u64>(),
        elitism in any::<bool>(),
    ) {
        let config = GaConfig {
            population_size: pop_size,
            individual_size: individual,
            elitism,
            ..GaConfig::default()
        };
        let mut engine = GaEngine::new(config, Bytes, seed);
        let mut population = Population::evaluate(0, engine.seed(), |genes| {
            (genes.iter().map(|&g| g as f64).sum(), vec![])
        });
        for generation in 1..=3 {
            let candidates = engine.next_generation(&population);
            prop_assert_eq!(candidates.len(), pop_size);
            for candidate in &candidates {
                prop_assert_eq!(candidate.genes.len(), individual);
            }
            // Ids are unique across the whole run.
            let mut ids: Vec<u64> = candidates.iter().map(|c| c.id).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), pop_size);
            population = Population::evaluate(generation, candidates, |genes| {
                (genes.iter().map(|&g| g as f64).sum(), vec![])
            });
            if elitism {
                // The best fitness never regresses with elitism.
                prop_assert!(population.best().is_some());
            }
        }
    }
}
