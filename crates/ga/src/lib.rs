#![warn(missing_docs)]

//! Genetic-algorithm engine for GeST.
//!
//! Implements the GA flow of paper §III.A / Figure 2: seed population →
//! measure individuals → create the next generation with tournament
//! selection, crossover (one-point by default — the paper finds it
//! preserves instruction order and converges faster than uniform),
//! per-gene mutation, and elitism. The engine is generic over the gene
//! type via the [`Genetics`] trait, so the same machinery can evolve
//! instruction sequences (the GeST use case) or anything else.
//!
//! Measurement and fitness evaluation live *outside* the engine, exactly
//! as in the paper's architecture (Figure 1): [`GaEngine::seed`] and
//! [`GaEngine::next_generation`] produce [`Candidate`]s; the caller
//! measures them, assigns fitness, and feeds back an evaluated
//! [`Population`].
//!
//! # Examples
//!
//! Evolving byte strings toward maximum sum:
//!
//! ```
//! use gest_ga::{Candidate, Evaluated, GaConfig, GaEngine, Genetics, Population};
//! use rand::rngs::StdRng;
//! use rand::Rng;
//!
//! struct Bytes;
//! impl Genetics for Bytes {
//!     type Gene = u8;
//!     fn random_gene(&self, rng: &mut StdRng) -> u8 { rng.random() }
//!     fn mutate_gene(&self, gene: &mut u8, rng: &mut StdRng) { *gene = rng.random(); }
//! }
//!
//! let config = GaConfig { individual_size: 8, population_size: 20, ..GaConfig::default() };
//! let mut engine = GaEngine::new(config, Bytes, 42);
//! let mut population = Population::evaluate(0, engine.seed(), |genes| {
//!     let fitness = genes.iter().map(|&b| b as f64).sum();
//!     (fitness, vec![fitness])
//! });
//! for generation in 1..=30 {
//!     let candidates = engine.next_generation(&population);
//!     population = Population::evaluate(generation, candidates, |genes| {
//!         let fitness = genes.iter().map(|&b| b as f64).sum();
//!         (fitness, vec![fitness])
//!     });
//! }
//! assert!(population.best().unwrap().fitness > 8.0 * 200.0);
//! ```

mod config;
mod engine;
mod explore;
mod hash;
mod history;
mod ops;
mod population;

pub use config::{CrossoverOp, GaConfig, GaConfigError, SelectionOp};
pub use engine::{Candidate, EngineState, GaEngine, Genetics, OpCounts};
pub use explore::ExplorationSampler;
pub use hash::{canonical_hash_bytes, Fnv128};
pub use history::{GenerationSummary, History};
pub use ops::{crossover_one_point, crossover_uniform, mutate, tournament_select};
pub use population::{Evaluated, Population};
