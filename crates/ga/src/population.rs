//! Evaluated individuals and populations.

use crate::engine::Candidate;

/// An individual that has been measured and assigned a fitness value.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluated<G> {
    /// Unique id across the whole run.
    pub id: u64,
    /// Parent ids (`None` for seeded or elite-copied individuals' missing
    /// parents).
    pub parents: (Option<u64>, Option<u64>),
    /// The gene sequence.
    pub genes: Vec<G>,
    /// Fitness value assigned by the fitness function.
    pub fitness: f64,
    /// Raw measurement values, in measurement order. By convention the
    /// first is the headline metric (the paper's file-naming convention
    /// puts it first).
    pub measurements: Vec<f64>,
}

/// One full generation of evaluated individuals.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Population<G> {
    /// Generation number (0 for the seed population).
    pub generation: u32,
    /// The evaluated individuals.
    pub individuals: Vec<Evaluated<G>>,
}

impl<G> Population<G> {
    /// Evaluates a batch of candidates with a synchronous closure returning
    /// `(fitness, measurements)`.
    ///
    /// This is the single-threaded convenience path; the framework crate
    /// evaluates candidates in parallel and assembles the population
    /// manually.
    pub fn evaluate<F>(generation: u32, candidates: Vec<Candidate<G>>, mut f: F) -> Population<G>
    where
        F: FnMut(&[G]) -> (f64, Vec<f64>),
    {
        let individuals = candidates
            .into_iter()
            .map(|candidate| {
                let (fitness, measurements) = f(&candidate.genes);
                Evaluated {
                    id: candidate.id,
                    parents: candidate.parents,
                    genes: candidate.genes,
                    fitness,
                    measurements,
                }
            })
            .collect();
        Population {
            generation,
            individuals,
        }
    }

    /// The fittest individual, if the population is non-empty.
    ///
    /// Ties are broken toward the earlier individual, making runs
    /// deterministic.
    pub fn best(&self) -> Option<&Evaluated<G>> {
        self.individuals
            .iter()
            .reduce(|best, x| if x.fitness > best.fitness { x } else { best })
    }

    /// Mean fitness across the population (0 when empty).
    pub fn mean_fitness(&self) -> f64 {
        if self.individuals.is_empty() {
            return 0.0;
        }
        self.individuals.iter().map(|i| i.fitness).sum::<f64>() / self.individuals.len() as f64
    }

    /// Number of individuals.
    pub fn len(&self) -> usize {
        self.individuals.len()
    }

    /// Whether the population holds no individuals.
    pub fn is_empty(&self) -> bool {
        self.individuals.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop(fitnesses: &[f64]) -> Population<u8> {
        Population {
            generation: 1,
            individuals: fitnesses
                .iter()
                .enumerate()
                .map(|(i, &fitness)| Evaluated {
                    id: i as u64,
                    parents: (None, None),
                    genes: vec![i as u8],
                    fitness,
                    measurements: vec![fitness],
                })
                .collect(),
        }
    }

    #[test]
    fn best_and_mean() {
        let population = pop(&[1.0, 5.0, 3.0]);
        assert_eq!(population.best().unwrap().id, 1);
        assert!((population.mean_fitness() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn best_tie_breaks_to_first() {
        let population = pop(&[4.0, 4.0]);
        assert_eq!(population.best().unwrap().id, 0);
    }

    #[test]
    fn empty_population() {
        let population: Population<u8> = Population::default();
        assert!(population.best().is_none());
        assert_eq!(population.mean_fitness(), 0.0);
        assert!(population.is_empty());
    }

    #[test]
    fn evaluate_maps_candidates() {
        let candidates = vec![Candidate {
            id: 7,
            parents: (Some(1), Some(2)),
            genes: vec![3u8, 4],
        }];
        let population = Population::evaluate(2, candidates, |genes| {
            (genes.iter().map(|&g| g as f64).sum(), vec![1.0, 2.0])
        });
        assert_eq!(population.generation, 2);
        assert_eq!(population.individuals[0].fitness, 7.0);
        assert_eq!(population.individuals[0].measurements, vec![1.0, 2.0]);
        assert_eq!(population.individuals[0].parents, (Some(1), Some(2)));
    }
}
