//! Deterministic exploration sampling for surrogate-screened evaluation.
//!
//! When the runner screens a generation down to the top-K predicted
//! candidates, a small *exploration quota* of the screened-out rest is
//! still fully simulated, so the surrogate keeps receiving training
//! pairs outside its own top picks (otherwise the model only ever sees
//! candidates it already likes, and its rank correlation estimate goes
//! stale). The quota is drawn by reservoir sampling from a dedicated
//! SplitMix64 stream seeded by `(run seed, generation)` — deliberately
//! *not* the breeding RNG, whose stream position is part of the
//! checkpointed search state and must not depend on whether screening is
//! enabled. Same seed + same generation + same pool ⇒ same picks, on any
//! thread count or lane width.

/// A deterministic index sampler for exploration quotas.
#[derive(Debug, Clone)]
pub struct ExplorationSampler {
    state: u64,
}

impl ExplorationSampler {
    /// Creates a sampler for one generation of one run. The seed mixing
    /// keeps streams for different generations (and different runs)
    /// decorrelated while staying independent of the breeding RNG.
    pub fn new(seed: u64, generation: u32) -> ExplorationSampler {
        let mut sampler = ExplorationSampler {
            state: seed
                ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(generation).wrapping_add(1)),
        };
        // Discard a few outputs so nearby seeds diverge immediately.
        sampler.next_u64();
        sampler.next_u64();
        sampler
    }

    /// SplitMix64 step: a full-period 64-bit mixer, deterministic and
    /// platform-independent.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Draws up to `quota` items from `pool` by reservoir sampling
    /// (Algorithm R) and returns them sorted ascending — a canonical
    /// order, so callers iterate the picks deterministically. When the
    /// pool is no larger than the quota, every item is returned.
    pub fn reservoir(&mut self, pool: &[usize], quota: usize) -> Vec<usize> {
        if pool.len() <= quota {
            return pool.to_vec();
        }
        let mut picks: Vec<usize> = pool[..quota].to_vec();
        for (seen, &item) in pool.iter().enumerate().skip(quota) {
            let slot = (self.next_u64() % (seen as u64 + 1)) as usize;
            if slot < quota {
                picks[slot] = item;
            }
        }
        picks.sort_unstable();
        picks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_and_generation_sample_identically() {
        let pool: Vec<usize> = (0..40).collect();
        let a = ExplorationSampler::new(7, 3).reservoir(&pool, 5);
        let b = ExplorationSampler::new(7, 3).reservoir(&pool, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted: {a:?}");
    }

    #[test]
    fn different_generations_sample_differently() {
        let pool: Vec<usize> = (0..40).collect();
        let a = ExplorationSampler::new(7, 3).reservoir(&pool, 5);
        let b = ExplorationSampler::new(7, 4).reservoir(&pool, 5);
        assert_ne!(a, b);
    }

    #[test]
    fn small_pools_are_returned_whole() {
        let pool = [3, 9, 11];
        let picks = ExplorationSampler::new(1, 0).reservoir(&pool, 5);
        assert_eq!(picks, pool);
    }

    #[test]
    fn quota_zero_samples_nothing() {
        let pool: Vec<usize> = (0..10).collect();
        assert!(ExplorationSampler::new(1, 0).reservoir(&pool, 0).is_empty());
    }
}
