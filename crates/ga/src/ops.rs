//! The genetic operators: selection, crossover, mutation.
//!
//! Exposed as free functions so ablation benchmarks and property tests can
//! exercise them directly, independent of the engine loop.

use crate::population::Evaluated;
use rand::rngs::StdRng;
use rand::Rng;

/// Tournament selection (paper Figure 3, step 1): draw `size` individuals
/// uniformly at random (with replacement) and return the index of the
/// fittest among them.
///
/// # Panics
///
/// Panics if the population is empty or `size` is zero.
pub fn tournament_select<G>(population: &[Evaluated<G>], size: usize, rng: &mut StdRng) -> usize {
    assert!(
        !population.is_empty(),
        "tournament over an empty population"
    );
    assert!(size > 0, "tournament size must be positive");
    let mut best = rng.random_range(0..population.len());
    for _ in 1..size {
        let challenger = rng.random_range(0..population.len());
        if population[challenger].fitness > population[best].fitness {
            best = challenger;
        }
    }
    best
}

/// One-point crossover (paper Figure 3, step 2): choose a cut point and
/// exchange tails. `child1` inherits the head of `parent1`, `child2` the
/// head of `parent2`.
///
/// Cut points are drawn from `1..len`, so each child always receives genes
/// from both parents (when `len >= 2`; length-1 parents are cloned).
///
/// # Panics
///
/// Panics if the parents have different lengths or are empty.
pub fn crossover_one_point<G: Clone>(
    parent1: &[G],
    parent2: &[G],
    rng: &mut StdRng,
) -> (Vec<G>, Vec<G>) {
    assert_eq!(
        parent1.len(),
        parent2.len(),
        "parents must have equal length"
    );
    assert!(!parent1.is_empty(), "parents must be non-empty");
    if parent1.len() == 1 {
        return (parent1.to_vec(), parent2.to_vec());
    }
    let point = rng.random_range(1..parent1.len());
    let mut child1 = Vec::with_capacity(parent1.len());
    let mut child2 = Vec::with_capacity(parent1.len());
    child1.extend_from_slice(&parent1[..point]);
    child1.extend_from_slice(&parent2[point..]);
    child2.extend_from_slice(&parent2[..point]);
    child2.extend_from_slice(&parent1[point..]);
    (child1, child2)
}

/// Uniform crossover: each position is swapped between the parents with
/// probability 1/2. The paper notes this preserves instruction order less
/// well than one-point and converges slower for power/dI/dt searches.
///
/// # Panics
///
/// Panics if the parents have different lengths.
pub fn crossover_uniform<G: Clone>(
    parent1: &[G],
    parent2: &[G],
    rng: &mut StdRng,
) -> (Vec<G>, Vec<G>) {
    assert_eq!(
        parent1.len(),
        parent2.len(),
        "parents must have equal length"
    );
    let mut child1 = Vec::with_capacity(parent1.len());
    let mut child2 = Vec::with_capacity(parent1.len());
    for (a, b) in parent1.iter().zip(parent2) {
        if rng.random_bool(0.5) {
            child1.push(b.clone());
            child2.push(a.clone());
        } else {
            child1.push(a.clone());
            child2.push(b.clone());
        }
    }
    (child1, child2)
}

/// Per-gene mutation (paper Figure 3, step 3): each gene is independently
/// mutated with probability `rate` by calling `mutate_gene`.
///
/// Returns how many genes were mutated.
pub fn mutate<G>(
    genes: &mut [G],
    rate: f64,
    rng: &mut StdRng,
    mut mutate_gene: impl FnMut(&mut G, &mut StdRng),
) -> usize {
    let mut count = 0;
    for gene in genes.iter_mut() {
        if rng.random_bool(rate) {
            mutate_gene(gene, rng);
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn population(fitnesses: &[f64]) -> Vec<Evaluated<u8>> {
        fitnesses
            .iter()
            .enumerate()
            .map(|(i, &fitness)| Evaluated {
                id: i as u64,
                parents: (None, None),
                genes: vec![i as u8],
                fitness,
                measurements: vec![],
            })
            .collect()
    }

    #[test]
    fn tournament_of_population_size_finds_max_often() {
        let pop = population(&[0.0, 9.0, 3.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(1);
        // A big tournament almost surely includes the best individual.
        let mut hits = 0;
        for _ in 0..100 {
            if tournament_select(&pop, 32, &mut rng) == 1 {
                hits += 1;
            }
        }
        assert!(hits > 95, "expected near-always max, got {hits}");
    }

    #[test]
    fn tournament_of_one_is_uniform() {
        let pop = population(&[0.0, 9.0]);
        let mut rng = StdRng::seed_from_u64(2);
        let picks: Vec<usize> = (0..200)
            .map(|_| tournament_select(&pop, 1, &mut rng))
            .collect();
        assert!(picks.contains(&0), "size-1 tournaments ignore fitness");
        assert!(picks.contains(&1));
    }

    #[test]
    fn one_point_swaps_tails() {
        let p1 = [1u8, 1, 1, 1];
        let p2 = [2u8, 2, 2, 2];
        let mut rng = StdRng::seed_from_u64(3);
        let (c1, c2) = crossover_one_point(&p1, &p2, &mut rng);
        // Each child starts with its own parent's genes and switches once.
        assert_eq!(c1[0], 1);
        assert_eq!(c2[0], 2);
        assert_eq!(*c1.last().unwrap(), 2);
        assert_eq!(*c2.last().unwrap(), 1);
        let switches = |c: &[u8]| c.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(switches(&c1), 1);
        assert_eq!(switches(&c2), 1);
    }

    #[test]
    fn crossover_conserves_genes() {
        let p1: Vec<u32> = (0..20).collect();
        let p2: Vec<u32> = (100..120).collect();
        let mut rng = StdRng::seed_from_u64(4);
        for uniform in [false, true] {
            let (c1, c2) = if uniform {
                crossover_uniform(&p1, &p2, &mut rng)
            } else {
                crossover_one_point(&p1, &p2, &mut rng)
            };
            // Position-wise, each slot holds one parent's gene and the other
            // child holds the complementary gene.
            for i in 0..p1.len() {
                let pair = (c1[i], c2[i]);
                assert!(pair == (p1[i], p2[i]) || pair == (p2[i], p1[i]), "slot {i}");
            }
        }
    }

    #[test]
    fn length_one_parents_pass_through() {
        let mut rng = StdRng::seed_from_u64(5);
        let (c1, c2) = crossover_one_point(&[7u8], &[9u8], &mut rng);
        assert_eq!((c1, c2), (vec![7], vec![9]));
    }

    #[test]
    fn mutation_rate_zero_and_one() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut genes = vec![0u8; 100];
        let mutated = mutate(&mut genes, 0.0, &mut rng, |g, _| *g = 1);
        assert_eq!(mutated, 0);
        assert!(genes.iter().all(|&g| g == 0));
        let mutated = mutate(&mut genes, 1.0, &mut rng, |g, _| *g = 1);
        assert_eq!(mutated, 100);
        assert!(genes.iter().all(|&g| g == 1));
    }

    #[test]
    fn mutation_rate_two_percent_touches_about_one_in_fifty() {
        // The paper's rationale: 2% at loop length 50 ≈ one instruction.
        let mut rng = StdRng::seed_from_u64(7);
        let mut total = 0;
        for _ in 0..1000 {
            let mut genes = vec![0u8; 50];
            total += mutate(&mut genes, 0.02, &mut rng, |g, _| *g = 1);
        }
        let mean = total as f64 / 1000.0;
        assert!((0.8..1.2).contains(&mean), "mean mutations {mean}");
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_parents_panic() {
        let mut rng = StdRng::seed_from_u64(8);
        let _ = crossover_one_point(&[1u8], &[1u8, 2], &mut rng);
    }
}
