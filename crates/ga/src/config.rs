//! GA configuration (paper Table I).

use std::error::Error;
use std::fmt;

/// Crossover operator choice.
///
/// The paper prefers one-point crossover because it "does a better job in
/// preserving the instruction-order of strong individuals compared to
/// uniform-crossover"; both are provided so the claim can be measured
/// (see the `crossover_ablation` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CrossoverOp {
    /// Split both parents at one random point and swap tails.
    #[default]
    OnePoint,
    /// Swap each gene between the parents with probability 1/2.
    Uniform,
}

/// Parent-selection operator choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectionOp {
    /// Pick `size` random individuals, select the fittest (paper default,
    /// size 5).
    Tournament {
        /// Number of individuals entering each tournament.
        size: usize,
    },
}

impl Default for SelectionOp {
    fn default() -> Self {
        SelectionOp::Tournament { size: 5 }
    }
}

/// All GA engine parameters, with the paper's defaults (Table I).
///
/// | parameter | paper default |
/// |---|---|
/// | `population_size` | 50 |
/// | `individual_size` | 15–50 (50 here; dI/dt searches use shorter loops) |
/// | `mutation_rate` | 0.02–0.08 (0.02 here, ≈1 mutated instruction at size 50) |
/// | `crossover` | one-point |
/// | `elitism` | true |
/// | `selection` | tournament of 5 |
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaConfig {
    /// Individuals per generation.
    pub population_size: usize,
    /// Genes (loop instructions) per individual.
    pub individual_size: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Crossover operator.
    pub crossover: CrossoverOp,
    /// Whether the best individual is copied unchanged into the next
    /// generation.
    pub elitism: bool,
    /// Parent selection operator.
    pub selection: SelectionOp,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population_size: 50,
            individual_size: 50,
            mutation_rate: 0.02,
            crossover: CrossoverOp::OnePoint,
            elitism: true,
            selection: SelectionOp::default(),
        }
    }
}

impl GaConfig {
    /// The paper's rule of thumb for the mutation rate: aim for about one
    /// mutated instruction per individual (2 % at loop length 50, 8 % at
    /// 15).
    ///
    /// # Examples
    ///
    /// ```
    /// assert_eq!(gest_ga::GaConfig::mutation_rate_for(50), 0.02);
    /// assert!((gest_ga::GaConfig::mutation_rate_for(15) - 0.0667).abs() < 1e-3);
    /// ```
    pub fn mutation_rate_for(individual_size: usize) -> f64 {
        1.0 / individual_size.max(1) as f64
    }

    /// The paper's rule of thumb for dI/dt loop length:
    /// `IPC × f_clk / f_resonance`, with IPC ≈ half the theoretical maximum
    /// ("dI/dt should contain low and fast activity phases").
    ///
    /// # Examples
    ///
    /// ```
    /// // 3.1 GHz clock, 100 MHz resonance, max IPC 3 → target IPC 1.5 → 47 instructions.
    /// let len = gest_ga::GaConfig::didt_loop_length(3.1e9, 100.0e6, 3.0);
    /// assert_eq!(len, 47);
    /// ```
    pub fn didt_loop_length(clock_hz: f64, resonance_hz: f64, max_ipc: f64) -> usize {
        ((max_ipc / 2.0) * clock_hz / resonance_hz).round() as usize
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`GaConfigError`] describing the first invalid field.
    pub fn validate(&self) -> Result<(), GaConfigError> {
        if self.population_size < 2 {
            return Err(GaConfigError::PopulationTooSmall(self.population_size));
        }
        if self.individual_size == 0 {
            return Err(GaConfigError::EmptyIndividual);
        }
        if !(0.0..=1.0).contains(&self.mutation_rate) {
            return Err(GaConfigError::BadMutationRate(self.mutation_rate));
        }
        match self.selection {
            SelectionOp::Tournament { size: 0 } => Err(GaConfigError::EmptyTournament),
            _ => Ok(()),
        }
    }
}

/// Validation errors for [`GaConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GaConfigError {
    /// Fewer than two individuals cannot breed.
    PopulationTooSmall(usize),
    /// Individuals must have at least one gene.
    EmptyIndividual,
    /// Mutation rate must lie in `[0, 1]`.
    BadMutationRate(f64),
    /// Tournaments need at least one entrant.
    EmptyTournament,
}

impl fmt::Display for GaConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GaConfigError::PopulationTooSmall(n) => {
                write!(f, "population size {n} is too small (need at least 2)")
            }
            GaConfigError::EmptyIndividual => write!(f, "individual size must be at least 1"),
            GaConfigError::BadMutationRate(r) => {
                write!(f, "mutation rate {r} outside [0, 1]")
            }
            GaConfigError::EmptyTournament => write!(f, "tournament size must be at least 1"),
        }
    }
}

impl Error for GaConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_table1() {
        let config = GaConfig::default();
        assert_eq!(config.population_size, 50);
        assert_eq!(config.individual_size, 50);
        assert_eq!(config.mutation_rate, 0.02);
        assert_eq!(config.crossover, CrossoverOp::OnePoint);
        assert!(config.elitism);
        assert_eq!(config.selection, SelectionOp::Tournament { size: 5 });
        config.validate().unwrap();
    }

    #[test]
    fn mutation_rule_of_thumb() {
        // Paper: "for loop lengths of 50 instructions we need 2% mutation
        // rate, for 15 instructions we need 8%" (approximately 1/15 ≈ 6.7%,
        // rounded up to 8% in the paper's prose).
        assert_eq!(GaConfig::mutation_rate_for(50), 0.02);
        assert!(GaConfig::mutation_rate_for(15) > 0.06);
    }

    #[test]
    fn didt_length_falls_in_paper_range() {
        // "the aforementioned equation typically results in loop lengths of
        // 15 to 50 instructions"
        let len = GaConfig::didt_loop_length(3.1e9, 100.0e6, 2.0);
        assert!((15..=50).contains(&len), "{len}");
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let mut config = GaConfig {
            population_size: 1,
            ..GaConfig::default()
        };
        assert!(matches!(
            config.validate(),
            Err(GaConfigError::PopulationTooSmall(1))
        ));
        config.population_size = 10;
        config.individual_size = 0;
        assert!(matches!(
            config.validate(),
            Err(GaConfigError::EmptyIndividual)
        ));
        config.individual_size = 10;
        config.mutation_rate = 1.5;
        assert!(matches!(
            config.validate(),
            Err(GaConfigError::BadMutationRate(_))
        ));
        config.mutation_rate = 0.1;
        config.selection = SelectionOp::Tournament { size: 0 };
        assert!(matches!(
            config.validate(),
            Err(GaConfigError::EmptyTournament)
        ));
    }
}
