//! Content hashing for evaluation caching.
//!
//! The search loop evaluates many syntactically identical individuals —
//! elites survive unchanged, crossover recombines the same genes, and
//! converged populations are full of near-duplicates. A stable
//! content hash over an individual's canonical gene encoding lets the
//! runner key a result cache by *what* a candidate is rather than *which*
//! candidate it is.
//!
//! FNV-1a is used because it is trivially portable, allocation-free, and
//! byte-order independent; the 128-bit variant makes accidental collisions
//! across a whole search run (at most millions of distinct programs)
//! vanishingly unlikely.

/// Incremental 128-bit FNV-1a hasher.
///
/// # Examples
///
/// ```
/// use gest_ga::Fnv128;
/// let mut h = Fnv128::new();
/// h.write(b"abc");
/// let once = h.finish();
/// let mut again = Fnv128::new();
/// again.write(b"ab");
/// again.write(b"c");
/// assert_eq!(once, again.finish());
/// assert_ne!(once, Fnv128::new().finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fnv128 {
    state: u128,
}

/// FNV-1a 128-bit offset basis.
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime.
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

impl Fnv128 {
    /// Creates a hasher at the offset basis.
    pub fn new() -> Fnv128 {
        Fnv128 {
            state: FNV128_OFFSET,
        }
    }

    /// Feeds bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.state ^= byte as u128;
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u128 {
        self.state
    }
}

impl Default for Fnv128 {
    fn default() -> Fnv128 {
        Fnv128::new()
    }
}

/// Hashes a canonical byte encoding in one call.
///
/// # Examples
///
/// ```
/// let a = gest_ga::canonical_hash_bytes(b"FMUL v0, v1, v2");
/// let b = gest_ga::canonical_hash_bytes(b"FMUL v0, v1, v3");
/// assert_ne!(a, b);
/// ```
pub fn canonical_hash_bytes(bytes: &[u8]) -> u128 {
    let mut hasher = Fnv128::new();
    hasher.write(bytes);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_offset_basis() {
        assert_eq!(canonical_hash_bytes(b""), FNV128_OFFSET);
    }

    #[test]
    fn known_vector_a() {
        // FNV-1a 128 of "a": (offset ^ 'a') * prime.
        let expected = (FNV128_OFFSET ^ b'a' as u128).wrapping_mul(FNV128_PRIME);
        assert_eq!(canonical_hash_bytes(b"a"), expected);
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(canonical_hash_bytes(b"ab"), canonical_hash_bytes(b"ba"));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv128::new();
        for chunk in [b"ge".as_slice(), b"st".as_slice()] {
            h.write(chunk);
        }
        assert_eq!(h.finish(), canonical_hash_bytes(b"gest"));
    }

    #[test]
    fn boundary_shifts_change_the_hash() {
        // Concatenation ambiguity must come from the caller's framing,
        // not the hasher: identical concatenated bytes hash identically.
        assert_eq!(canonical_hash_bytes(b"xy"), canonical_hash_bytes(b"xy"),);
        assert_ne!(canonical_hash_bytes(b"x"), canonical_hash_bytes(b"xy"));
    }
}
