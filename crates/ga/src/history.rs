//! Convergence tracking across generations.
//!
//! The paper reports that GeST "produces stress-tests that exceed
//! significantly conventional workloads after 70-100 generations"; this
//! module records the per-generation statistics that back such claims and
//! provides a plateau detector usable as a stopping criterion.

use crate::population::Population;

/// Summary statistics of one generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationSummary {
    /// Generation number.
    pub generation: u32,
    /// Best fitness in the generation.
    pub best_fitness: f64,
    /// Mean fitness across the generation.
    pub mean_fitness: f64,
    /// Id of the best individual.
    pub best_id: u64,
}

/// Records per-generation summaries for convergence analysis.
///
/// # Examples
///
/// ```
/// use gest_ga::{History, Population, Evaluated};
/// let mut history = History::new();
/// let population = Population {
///     generation: 0,
///     individuals: vec![Evaluated {
///         id: 0, parents: (None, None), genes: vec![1u8],
///         fitness: 3.0, measurements: vec![3.0],
///     }],
/// };
/// history.record(&population);
/// assert_eq!(history.best_ever().unwrap().best_fitness, 3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct History {
    summaries: Vec<GenerationSummary>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> History {
        History::default()
    }

    /// Rebuilds a history from previously recorded summaries (e.g. a
    /// checkpoint manifest), in the order given.
    pub fn from_summaries(summaries: Vec<GenerationSummary>) -> History {
        History { summaries }
    }

    /// Records an evaluated population.
    ///
    /// Populations with no individuals are ignored.
    pub fn record<G>(&mut self, population: &Population<G>) {
        if let Some(best) = population.best() {
            self.summaries.push(GenerationSummary {
                generation: population.generation,
                best_fitness: best.fitness,
                mean_fitness: population.mean_fitness(),
                best_id: best.id,
            });
        }
    }

    /// All recorded summaries in order.
    pub fn summaries(&self) -> &[GenerationSummary] {
        &self.summaries
    }

    /// The summary of the generation with the highest best-fitness.
    pub fn best_ever(&self) -> Option<&GenerationSummary> {
        self.summaries.iter().reduce(|best, s| {
            if s.best_fitness > best.best_fitness {
                s
            } else {
                best
            }
        })
    }

    /// Whether the best fitness has failed to improve by more than
    /// `epsilon` for the last `window` recorded generations.
    ///
    /// Returns `false` until at least `window + 1` generations are
    /// recorded.
    pub fn plateaued(&self, window: usize, epsilon: f64) -> bool {
        if self.summaries.len() <= window {
            return false;
        }
        let reference = self.summaries[self.summaries.len() - 1 - window].best_fitness;
        self.summaries[self.summaries.len() - window..]
            .iter()
            .all(|s| s.best_fitness - reference <= epsilon)
    }

    /// The best-fitness series, one value per generation (useful for
    /// convergence plots).
    pub fn best_series(&self) -> Vec<f64> {
        self.summaries.iter().map(|s| s.best_fitness).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::Evaluated;

    fn pop(generation: u32, fitness: f64) -> Population<u8> {
        Population {
            generation,
            individuals: vec![Evaluated {
                id: generation as u64,
                parents: (None, None),
                genes: vec![0],
                fitness,
                measurements: vec![],
            }],
        }
    }

    #[test]
    fn records_and_finds_best() {
        let mut history = History::new();
        for (generation, fitness) in [(0, 1.0), (1, 5.0), (2, 3.0)] {
            history.record(&pop(generation, fitness));
        }
        assert_eq!(history.summaries().len(), 3);
        assert_eq!(history.best_ever().unwrap().generation, 1);
        assert_eq!(history.best_series(), vec![1.0, 5.0, 3.0]);
    }

    #[test]
    fn plateau_detection() {
        let mut history = History::new();
        for (generation, fitness) in [(0, 1.0), (1, 2.0), (2, 2.0), (3, 2.0), (4, 2.0)] {
            history.record(&pop(generation, fitness));
        }
        assert!(history.plateaued(3, 1e-9));
        assert!(
            !history.plateaued(4, 1e-9),
            "window reaching the 1.0->2.0 jump"
        );
    }

    #[test]
    fn plateau_needs_enough_data() {
        let mut history = History::new();
        history.record(&pop(0, 1.0));
        assert!(!history.plateaued(3, 0.1));
    }

    #[test]
    fn empty_population_ignored() {
        let mut history = History::new();
        history.record(&Population::<u8>::default());
        assert!(history.summaries().is_empty());
        assert!(history.best_ever().is_none());
    }
}
