//! The GA engine: seeding and generation turnover.

use crate::config::{CrossoverOp, GaConfig, SelectionOp};
use crate::ops::{crossover_one_point, crossover_uniform, mutate, tournament_select};
use crate::population::Population;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Domain plug-in: how to create and mutate genes.
///
/// For GeST this is implemented over an instruction pool (random gene =
/// random instruction instantiation; mutation = whole-instruction or
/// operand mutation). The trait keeps the engine reusable for other gene
/// types.
pub trait Genetics {
    /// The gene type individuals are sequences of.
    type Gene: Clone;

    /// Draws a fresh random gene.
    fn random_gene(&self, rng: &mut StdRng) -> Self::Gene;

    /// Mutates one gene in place.
    fn mutate_gene(&self, gene: &mut Self::Gene, rng: &mut StdRng);
}

/// An individual awaiting measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate<G> {
    /// Unique id across the run.
    pub id: u64,
    /// Ids of the two parents, when bred (elite copies carry their own
    /// single ancestor in the first slot).
    pub parents: (Option<u64>, Option<u64>),
    /// The gene sequence.
    pub genes: Vec<G>,
}

/// Cumulative genetic-operator application counts since engine creation —
/// the GA's observability surface. The engine stays tracing-free; callers
/// (e.g. `gest-core`'s runner) read these and export them as telemetry
/// counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Tournament selections performed.
    pub selections: u64,
    /// Crossover operations (each produces two children).
    pub crossovers: u64,
    /// Genes changed by mutation.
    pub mutated_genes: u64,
    /// Elite individuals copied through unchanged.
    pub elite_copies: u64,
    /// Genes drawn fresh (seeding, padding).
    pub random_genes: u64,
}

/// The engine's complete mutable state, exportable for checkpointing.
///
/// Restoring this into an engine built with the same configuration and
/// genetics continues the search bit-identically: the RNG stream picks up
/// exactly where it stopped, id allocation stays collision-free, and the
/// operator counters keep accumulating instead of restarting from zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineState {
    /// The raw xoshiro256** state words of the engine RNG.
    pub rng: [u64; 4],
    /// The next candidate id to allocate.
    pub next_id: u64,
    /// Cumulative operator counts.
    pub counts: OpCounts,
}

/// Coordinates the GA: owns the RNG, id allocation, and configuration.
///
/// See the crate-level example for a full loop.
#[derive(Debug)]
pub struct GaEngine<X: Genetics> {
    config: GaConfig,
    genetics: X,
    rng: StdRng,
    next_id: u64,
    counts: OpCounts,
}

impl<X: Genetics> GaEngine<X> {
    /// Creates an engine with the given configuration and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation; call [`GaConfig::validate`]
    /// first to handle errors gracefully.
    pub fn new(config: GaConfig, genetics: X, seed: u64) -> GaEngine<X> {
        config.validate().expect("invalid GA configuration");
        GaEngine {
            config,
            genetics,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
            counts: OpCounts::default(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &GaConfig {
        &self.config
    }

    /// Cumulative operator counts since the engine was created.
    pub fn op_counts(&self) -> OpCounts {
        self.counts
    }

    /// Access to the domain plug-in.
    pub fn genetics(&self) -> &X {
        &self.genetics
    }

    /// Snapshots the engine's mutable state (RNG stream position, id
    /// allocator, operator counters) for checkpointing.
    pub fn export_state(&self) -> EngineState {
        EngineState {
            rng: self.rng.state(),
            next_id: self.next_id,
            counts: self.counts,
        }
    }

    /// Restores state previously captured by [`GaEngine::export_state`].
    ///
    /// The caller is responsible for pairing the state with the same
    /// configuration and genetics it was exported under; the engine itself
    /// only carries the mutable parts.
    pub fn restore_state(&mut self, state: EngineState) {
        self.rng = StdRng::from_state(state.rng);
        self.next_id = state.next_id;
        self.counts = state.counts;
    }

    fn allocate_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn fresh_gene(&mut self) -> X::Gene {
        self.counts.random_genes += 1;
        self.genetics.random_gene(&mut self.rng)
    }

    /// Creates the random seed population (paper Figure 2, first step).
    pub fn seed(&mut self) -> Vec<Candidate<X::Gene>> {
        (0..self.config.population_size)
            .map(|_| {
                let genes = (0..self.config.individual_size)
                    .map(|_| self.fresh_gene())
                    .collect();
                Candidate {
                    id: self.allocate_id(),
                    parents: (None, None),
                    genes,
                }
            })
            .collect()
    }

    /// Wraps externally-supplied individuals (e.g. a population loaded from
    /// a previous run's binary file) as candidates, assigning fresh ids.
    ///
    /// Individuals shorter than `individual_size` are padded with random
    /// genes; longer ones are truncated, so a seed file from a different
    /// loop-length configuration still works.
    pub fn seed_from(&mut self, individuals: Vec<Vec<X::Gene>>) -> Vec<Candidate<X::Gene>> {
        let mut candidates: Vec<Candidate<X::Gene>> = individuals
            .into_iter()
            .map(|mut genes| {
                genes.truncate(self.config.individual_size);
                while genes.len() < self.config.individual_size {
                    let gene = self.fresh_gene();
                    genes.push(gene);
                }
                Candidate {
                    id: self.allocate_id(),
                    parents: (None, None),
                    genes,
                }
            })
            .collect();
        // Top up or trim to the configured population size.
        while candidates.len() < self.config.population_size {
            let genes = (0..self.config.individual_size)
                .map(|_| self.fresh_gene())
                .collect();
            candidates.push(Candidate {
                id: self.allocate_id(),
                parents: (None, None),
                genes,
            });
        }
        candidates.truncate(self.config.population_size);
        candidates
    }

    /// Breeds the next generation from an evaluated population (paper
    /// Figure 3): repeated tournament selection of two parents, crossover,
    /// and mutation, until the population size is reached; with elitism the
    /// best individual is copied through unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `population` is empty.
    pub fn next_generation(&mut self, population: &Population<X::Gene>) -> Vec<Candidate<X::Gene>> {
        assert!(
            !population.is_empty(),
            "cannot breed from an empty population"
        );
        let mut next = Vec::with_capacity(self.config.population_size);
        if self.config.elitism {
            let best = population.best().expect("non-empty population");
            self.counts.elite_copies += 1;
            next.push(Candidate {
                id: self.allocate_id(),
                parents: (Some(best.id), None),
                genes: best.genes.clone(),
            });
        }
        while next.len() < self.config.population_size {
            let SelectionOp::Tournament { size } = self.config.selection;
            let p1 = tournament_select(&population.individuals, size, &mut self.rng);
            let p2 = tournament_select(&population.individuals, size, &mut self.rng);
            self.counts.selections += 2;
            let parent1 = &population.individuals[p1];
            let parent2 = &population.individuals[p2];
            let (mut genes1, mut genes2) = match self.config.crossover {
                CrossoverOp::OnePoint => {
                    crossover_one_point(&parent1.genes, &parent2.genes, &mut self.rng)
                }
                CrossoverOp::Uniform => {
                    crossover_uniform(&parent1.genes, &parent2.genes, &mut self.rng)
                }
            };
            self.counts.crossovers += 1;
            let mutated = mutate(
                &mut genes1,
                self.config.mutation_rate,
                &mut self.rng,
                |g, rng| self.genetics.mutate_gene(g, rng),
            ) + mutate(
                &mut genes2,
                self.config.mutation_rate,
                &mut self.rng,
                |g, rng| self.genetics.mutate_gene(g, rng),
            );
            self.counts.mutated_genes += mutated as u64;
            let parents = (Some(parent1.id), Some(parent2.id));
            next.push(Candidate {
                id: self.next_id,
                parents,
                genes: genes1,
            });
            self.next_id += 1;
            if next.len() < self.config.population_size {
                next.push(Candidate {
                    id: self.next_id,
                    parents,
                    genes: genes2,
                });
                self.next_id += 1;
            }
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    struct Bytes;

    impl Genetics for Bytes {
        type Gene = u8;
        fn random_gene(&self, rng: &mut StdRng) -> u8 {
            rng.random()
        }
        fn mutate_gene(&self, gene: &mut u8, rng: &mut StdRng) {
            *gene = rng.random();
        }
    }

    fn sum_fitness(genes: &[u8]) -> (f64, Vec<f64>) {
        let fitness: f64 = genes.iter().map(|&b| b as f64).sum();
        (fitness, vec![fitness])
    }

    fn small_config() -> GaConfig {
        GaConfig {
            population_size: 20,
            individual_size: 10,
            ..GaConfig::default()
        }
    }

    #[test]
    fn seed_population_shape_and_unique_ids() {
        let mut engine = GaEngine::new(small_config(), Bytes, 1);
        let seed = engine.seed();
        assert_eq!(seed.len(), 20);
        assert!(seed.iter().all(|c| c.genes.len() == 10));
        let mut ids: Vec<u64> = seed.iter().map(|c| c.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 20);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut engine = GaEngine::new(small_config(), Bytes, seed);
            let mut population = Population::evaluate(0, engine.seed(), sum_fitness);
            for generation in 1..=5 {
                let candidates = engine.next_generation(&population);
                population = Population::evaluate(generation, candidates, sum_fitness);
            }
            population.best().unwrap().genes.clone()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds explore differently");
    }

    #[test]
    fn fitness_improves_on_toy_problem() {
        let mut engine = GaEngine::new(small_config(), Bytes, 7);
        let mut population = Population::evaluate(0, engine.seed(), sum_fitness);
        let initial = population.best().unwrap().fitness;
        for generation in 1..=40 {
            let candidates = engine.next_generation(&population);
            population = Population::evaluate(generation, candidates, sum_fitness);
        }
        let final_best = population.best().unwrap().fitness;
        assert!(
            final_best > initial * 1.2,
            "GA failed to improve: {initial} -> {final_best}"
        );
        // Optimum is 255 * 10; forty generations should get close.
        assert!(
            final_best > 0.85 * 2550.0,
            "final fitness too low: {final_best}"
        );
    }

    #[test]
    fn elitism_never_loses_the_best() {
        let mut engine = GaEngine::new(small_config(), Bytes, 9);
        let mut population = Population::evaluate(0, engine.seed(), sum_fitness);
        let mut best_so_far = population.best().unwrap().fitness;
        for generation in 1..=20 {
            let candidates = engine.next_generation(&population);
            population = Population::evaluate(generation, candidates, sum_fitness);
            let best = population.best().unwrap().fitness;
            assert!(best >= best_so_far, "generation {generation} regressed");
            best_so_far = best;
        }
    }

    #[test]
    fn without_elitism_best_can_regress() {
        let config = GaConfig {
            elitism: false,
            mutation_rate: 0.5,
            ..small_config()
        };
        let mut engine = GaEngine::new(config, Bytes, 11);
        let mut population = Population::evaluate(0, engine.seed(), sum_fitness);
        let mut regressed = false;
        let mut prev = population.best().unwrap().fitness;
        for generation in 1..=30 {
            let candidates = engine.next_generation(&population);
            population = Population::evaluate(generation, candidates, sum_fitness);
            let best = population.best().unwrap().fitness;
            if best < prev {
                regressed = true;
            }
            prev = best;
        }
        assert!(
            regressed,
            "high mutation without elitism should regress at least once"
        );
    }

    #[test]
    fn children_record_parent_ids() {
        let mut engine = GaEngine::new(small_config(), Bytes, 13);
        let population = Population::evaluate(0, engine.seed(), sum_fitness);
        let next = engine.next_generation(&population);
        let parent_ids: std::collections::HashSet<u64> =
            population.individuals.iter().map(|i| i.id).collect();
        // First candidate is the elite copy.
        assert_eq!(next[0].parents.1, None);
        for child in &next[1..] {
            let (Some(a), Some(b)) = child.parents else {
                panic!("bred child missing parents")
            };
            assert!(parent_ids.contains(&a) && parent_ids.contains(&b));
        }
    }

    #[test]
    fn seed_from_pads_and_truncates() {
        let mut engine = GaEngine::new(small_config(), Bytes, 17);
        let seeded = engine.seed_from(vec![vec![1u8; 3], vec![2u8; 30]]);
        assert_eq!(seeded.len(), 20, "topped up to population size");
        assert!(seeded.iter().all(|c| c.genes.len() == 10));
        assert_eq!(&seeded[0].genes[..3], &[1, 1, 1]);
        assert!(seeded[1].genes.iter().all(|&g| g == 2));
    }

    #[test]
    fn state_round_trip_continues_bit_identically() {
        let mut reference = GaEngine::new(small_config(), Bytes, 23);
        let mut interrupted = GaEngine::new(small_config(), Bytes, 23);
        let mut ref_pop = Population::evaluate(0, reference.seed(), sum_fitness);
        let mut int_pop = Population::evaluate(0, interrupted.seed(), sum_fitness);
        for generation in 1..=3 {
            ref_pop =
                Population::evaluate(generation, reference.next_generation(&ref_pop), sum_fitness);
            int_pop = Population::evaluate(
                generation,
                interrupted.next_generation(&int_pop),
                sum_fitness,
            );
        }
        // "Crash": rebuild a fresh engine and restore the snapshot into it.
        let state = interrupted.export_state();
        let mut resumed = GaEngine::new(small_config(), Bytes, 999);
        resumed.restore_state(state);
        assert_eq!(resumed.export_state(), state);
        for generation in 4..=8 {
            ref_pop =
                Population::evaluate(generation, reference.next_generation(&ref_pop), sum_fitness);
            int_pop =
                Population::evaluate(generation, resumed.next_generation(&int_pop), sum_fitness);
        }
        assert_eq!(
            ref_pop, int_pop,
            "resumed engine must match uninterrupted run"
        );
        assert_eq!(reference.export_state(), resumed.export_state());
    }

    #[test]
    fn op_counts_track_operator_applications() {
        let mut engine = GaEngine::new(small_config(), Bytes, 19);
        assert_eq!(engine.op_counts(), OpCounts::default());
        let population = Population::evaluate(0, engine.seed(), sum_fitness);
        assert_eq!(
            engine.op_counts().random_genes,
            20 * 10,
            "seed draws every gene"
        );
        engine.next_generation(&population);
        let counts = engine.op_counts();
        // 19 bred children (one elite) from ceil(19/2) = 10 crossovers.
        assert_eq!(counts.elite_copies, 1);
        assert_eq!(counts.crossovers, 10);
        assert_eq!(counts.selections, 20, "two tournaments per crossover");
        assert!(counts.mutated_genes > 0, "default rate mutates some genes");
    }

    #[test]
    #[should_panic(expected = "invalid GA configuration")]
    fn invalid_config_panics() {
        let config = GaConfig {
            population_size: 0,
            ..GaConfig::default()
        };
        let _ = GaEngine::new(config, Bytes, 0);
    }
}
