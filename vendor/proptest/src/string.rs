//! Regex-literal string strategies.
//!
//! Supports the subset of regex syntax the workspace's tests use: literal
//! characters, character classes with ranges (`[a-zA-Z0-9_.-]`, `[ -~]`),
//! `.` (any printable ASCII), and the quantifiers `{m}`, `{m,n}`, `?`,
//! `*`, `+` (the unbounded ones capped at 8 repetitions).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

/// A parse error for an unsupported or malformed pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsupported regex pattern: {}", self.0)
    }
}

impl std::error::Error for Error {}

#[derive(Debug, Clone)]
struct Atom {
    /// The characters this atom can produce.
    alphabet: Vec<char>,
    /// Repetition bounds (inclusive).
    min: usize,
    max: usize,
}

/// A compiled string strategy; see [`string_regex`].
#[derive(Debug, Clone)]
pub struct RegexGeneratorStrategy {
    atoms: Vec<Atom>,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;

    fn new_value(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let count = rng.random_range(atom.min..=atom.max);
            for _ in 0..count {
                out.push(atom.alphabet[rng.random_range(0..atom.alphabet.len())]);
            }
        }
        out
    }
}

/// Compiles `pattern` into a strategy producing matching strings.
///
/// # Errors
///
/// [`Error`] when the pattern uses syntax outside the supported subset.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet = match chars[i] {
            '[' => {
                let (set, next) = parse_class(&chars, i + 1, pattern)?;
                i = next;
                set
            }
            '.' => {
                i += 1;
                (' '..='~').collect()
            }
            '\\' => {
                let escaped = *chars
                    .get(i + 1)
                    .ok_or_else(|| Error(format!("{pattern:?}: trailing backslash")))?;
                i += 2;
                escape_set(escaped)?
            }
            '(' | ')' | '|' | '^' | '$' => {
                return Err(Error(format!("{pattern:?}: {:?} not supported", chars[i])))
            }
            literal => {
                i += 1;
                vec![literal]
            }
        };
        let (min, max, next) = parse_quantifier(&chars, i, pattern)?;
        i = next;
        atoms.push(Atom { alphabet, min, max });
    }
    Ok(RegexGeneratorStrategy { atoms })
}

fn escape_set(escaped: char) -> Result<Vec<char>, Error> {
    Ok(match escaped {
        'd' => ('0'..='9').collect(),
        'w' => ('a'..='z')
            .chain('A'..='Z')
            .chain('0'..='9')
            .chain(['_'])
            .collect(),
        's' => vec![' ', '\t', '\n'],
        other => vec![other],
    })
}

/// Parses a `[...]` class body starting just past the `[`; returns the
/// character set and the index just past the closing `]`.
fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> Result<(Vec<char>, usize), Error> {
    if chars.get(i) == Some(&'^') {
        return Err(Error(format!("{pattern:?}: negated classes not supported")));
    }
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' {
            i += 1;
            *chars
                .get(i)
                .ok_or_else(|| Error(format!("{pattern:?}: trailing backslash in class")))?
        } else {
            chars[i]
        };
        // A `-` between two characters forms a range; first or last it is
        // a literal.
        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
            let end = chars[i + 2];
            if end < c {
                return Err(Error(format!("{pattern:?}: inverted range {c}-{end}")));
            }
            set.extend(c..=end);
            i += 3;
        } else {
            set.push(c);
            i += 1;
        }
    }
    if i >= chars.len() {
        return Err(Error(format!("{pattern:?}: unterminated class")));
    }
    if set.is_empty() {
        return Err(Error(format!("{pattern:?}: empty class")));
    }
    Ok((set, i + 1))
}

/// Parses an optional quantifier at `i`; returns `(min, max, next_index)`.
fn parse_quantifier(
    chars: &[char],
    i: usize,
    pattern: &str,
) -> Result<(usize, usize, usize), Error> {
    /// Repetition cap for `*` and `+`.
    const UNBOUNDED_CAP: usize = 8;
    match chars.get(i) {
        Some('?') => Ok((0, 1, i + 1)),
        Some('*') => Ok((0, UNBOUNDED_CAP, i + 1)),
        Some('+') => Ok((1, UNBOUNDED_CAP, i + 1)),
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .ok_or_else(|| Error(format!("{pattern:?}: unterminated quantifier")))?
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let parse = |s: &str| {
                s.trim()
                    .parse::<usize>()
                    .map_err(|_| Error(format!("{pattern:?}: bad quantifier {body:?}")))
            };
            let (min, max) = match body.split_once(',') {
                Some((low, high)) => (parse(low)?, parse(high)?),
                None => {
                    let n = parse(&body)?;
                    (n, n)
                }
            };
            if max < min {
                return Err(Error(format!("{pattern:?}: quantifier max < min")));
            }
            Ok((min, max, close + 1))
        }
        _ => Ok((1, 1, i)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn gen_many(pattern: &str, n: usize) -> Vec<String> {
        let strat = string_regex(pattern).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        (0..n).map(|_| strat.new_value(&mut rng)).collect()
    }

    #[test]
    fn class_with_ranges_and_literals() {
        for s in gen_many("[a-zA-Z_][a-zA-Z0-9_.-]{0,12}", 300) {
            assert!(!s.is_empty() && s.len() <= 13, "{s:?}");
            let mut cs = s.chars();
            let first = cs.next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_', "{s:?}");
            for c in cs {
                assert!(
                    c.is_ascii_alphanumeric() || "_.-".contains(c),
                    "{c:?} in {s:?}"
                );
            }
        }
    }

    #[test]
    fn printable_ascii_range() {
        let lengths: Vec<usize> = gen_many("[ -~]{0,24}", 300)
            .iter()
            .map(String::len)
            .collect();
        assert!(lengths.iter().all(|&l| l <= 24));
        assert!(lengths.contains(&0), "empty strings reachable");
        assert!(lengths.iter().any(|&l| l > 16), "long strings reachable");
    }

    #[test]
    fn exact_and_unbounded_quantifiers() {
        assert!(gen_many("a{3}", 10).iter().all(|s| s == "aaa"));
        assert!(gen_many("[01]+", 50)
            .iter()
            .all(|s| { !s.is_empty() && s.chars().all(|c| c == '0' || c == '1') }));
        assert!(gen_many("x?", 50).iter().all(|s| s.is_empty() || s == "x"));
    }

    #[test]
    fn unsupported_syntax_is_an_error() {
        assert!(string_regex("(ab)+").is_err());
        assert!(string_regex("[^a]").is_err());
        assert!(string_regex("[abc").is_err());
        assert!(string_regex("a{2,1}").is_err());
    }
}
