//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for the
    /// previous depth level and returns the strategy one level deeper;
    /// generation draws from a uniformly random depth in `0..=depth`.
    ///
    /// The `_desired_size` and `_expected_branch_size` tuning knobs of the
    /// real proptest API are accepted and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        let mut levels = vec![self.boxed()];
        for _ in 0..depth {
            let previous = levels.last().expect("at least the leaf level").clone();
            levels.push(recurse(previous).boxed());
        }
        BoxedStrategy(Rc::new(move |rng: &mut StdRng| {
            let level = rng.random_range(0..levels.len());
            levels[level].new_value(rng)
        }))
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut StdRng| self.new_value(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut StdRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Types with a canonical "arbitrary value" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_via_random {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.random()
            }
        }
    )*};
}

impl_arbitrary_via_random!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut StdRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),*) => {
        impl<$($name: Arbitrary),*> Arbitrary for ($($name,)*) {
            fn arbitrary(rng: &mut StdRng) -> ($($name,)*) {
                ($($name::arbitrary(rng),)*)
            }
        }
    };
}

impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);
impl_arbitrary_tuple!(A, B, C, D, E);
impl_arbitrary_tuple!(A, B, C, D, E, F);

/// Strategy over any [`Arbitrary`] type.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut StdRng) -> f64 {
        // A half-open draw is fine for property tests: the missing top
        // endpoint has measure zero.
        let (start, end) = (*self.start(), *self.end());
        if start == end {
            return start;
        }
        rng.random_range(start..end)
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident : $index:tt),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$index.new_value(rng),)*)
            }
        }
    };
}

impl_strategy_tuple!(A: 0);
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// String literals act as regex-subset strategies (`"[a-z]{0,12}"`).
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut StdRng) -> String {
        crate::string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
            .new_value(rng)
    }
}

/// Sizes accepted by [`vec`]: an exact length or a length range.
pub trait SizeRange {
    /// Draws a concrete length.
    fn pick(&self, rng: &mut StdRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.random_range(self.clone())
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.random_range(self.clone())
    }
}

/// See [`vec`].
pub struct VecStrategy<S, L> {
    element: S,
    length: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let length = self.length.pick(rng);
        (0..length).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Strategy for vectors whose elements come from `element` and whose
/// length is drawn from `length`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, length: L) -> VecStrategy<S, L> {
    VecStrategy { element, length }
}

/// See [`select`].
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        self.options[rng.random_range(0..self.options.len())].clone()
    }
}

/// Strategy picking uniformly from a fixed set of options.
///
/// # Panics
///
/// Generation panics if `options` is empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    Select { options }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_length_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let strat = vec(any::<u8>(), 3..7);
        for _ in 0..200 {
            let v = strat.new_value(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
        let exact = vec(any::<u8>(), 5usize);
        assert_eq!(exact.new_value(&mut rng).len(), 5);
    }

    #[test]
    fn map_and_tuples_compose() {
        let mut rng = StdRng::seed_from_u64(2);
        let strat = (0usize..10, 10usize..20).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            let sum = strat.new_value(&mut rng);
            assert!((10..29).contains(&sum));
        }
    }

    #[test]
    fn select_only_yields_options() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = select(vec!["a", "b", "c"]);
        for _ in 0..50 {
            assert!(["a", "b", "c"].contains(&strat.new_value(&mut rng)));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        enum Tree {
            // The payload exists to exercise map-into-variant; depth()
            // never reads it.
            #[allow(dead_code)]
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(tree: &Tree) -> usize {
            match tree {
                Tree::Leaf(_) => 0,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| vec(inner, 0..4).prop_map(Tree::Node));
        let mut rng = StdRng::seed_from_u64(4);
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&strat.new_value(&mut rng)));
        }
        assert!(
            max_depth >= 2,
            "recursion should sometimes nest, got {max_depth}"
        );
        assert!(max_depth <= 3 + 1, "depth bounded");
    }
}
