//! Offline drop-in replacement for the subset of the `proptest` API this
//! workspace's property tests use: the [`proptest!`] macro, the
//! [`Strategy`] trait with `prop_map`/`prop_recursive`, `any::<T>()`,
//! range and tuple strategies, `prop::collection::vec`,
//! `prop::sample::select`, regex-literal string strategies, and the
//! `prop_assert*` macros.
//!
//! Each test body runs for [`ProptestConfig::cases`] deterministic random
//! cases. There is no shrinking: a failing case panics with the regular
//! assertion message. That trades debuggability for zero dependencies —
//! the registry is unreachable from this container, so the real crate
//! cannot be used.

#![warn(missing_docs)]

pub mod strategy;
pub mod string;

pub use strategy::{any, Arbitrary, BoxedStrategy, Strategy};

/// Runtime configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Test-runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    pub use crate::ProptestConfig as Config;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Derives a deterministic per-test RNG from the test's name so every
    /// test explores a distinct but reproducible stream.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut seed = 0xC0FF_EE00_D15E_A5E5u64;
        for byte in test_name.bytes() {
            seed = seed
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(u64::from(byte));
        }
        StdRng::seed_from_u64(seed)
    }
}

/// The strategy namespace mirrored from `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
    /// Sampling strategies.
    pub mod sample {
        pub use crate::strategy::select;
    }
}

/// The conventional glob-import module.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Strategy};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random strategy draws.
///
/// An optional `#![proptest_config(expr)]` header overrides the default
/// [`ProptestConfig`].
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for(stringify!($name));
            for _case in 0..config.cases {
                $(let $pat = $crate::Strategy::new_value(&($strat), &mut rng);)*
                $body
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}
