//! Offline drop-in replacement for the subset of the `rand` 0.9 API this
//! workspace uses (`StdRng`, `SeedableRng::seed_from_u64`, and the
//! `random` / `random_range` / `random_bool` extension methods).
//!
//! The container this workspace builds in has no registry access, so the
//! real `rand` crate cannot be downloaded; this path dependency keeps the
//! public surface identical for the call sites in `gest-isa`, `gest-ga`,
//! and `gest-core`. `StdRng` is a xoshiro256** generator seeded through
//! SplitMix64 — deterministic for a given seed, which is all the GA
//! reproducibility tests require (no compatibility with upstream `rand`
//! streams is implied).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random-number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for `StdRng`).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 —
    /// the conventional convenience constructor for reproducible tests.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut splitmix = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from an RNG (the stand-in for
/// `rand`'s `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draws a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

/// A uniform value in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled (the stand-in for `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(mult_reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(mult_reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

/// Maps a uniform `u64` onto `[0, span)` by widening multiply (Lemire's
/// multiply-shift; the ~2^-64 bias is irrelevant here).
fn mult_reduce(x: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(x) * u128::from(span)) >> 64) as u64
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * (unit_f64(rng) as f32)
    }
}

/// Convenience extension methods over any [`RngCore`], mirroring `rand`'s
/// `Rng` trait.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        unit_f64(self) < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The shipped generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Not stream-compatible with upstream `rand`'s `StdRng` (ChaCha12),
    /// but equally deterministic for a given seed, which is what the GA
    /// reproducibility contract needs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Exposes the raw xoshiro256** state words, for checkpointing a
        /// generator mid-stream. Extension over the upstream `rand` API
        /// (upstream `StdRng` is deliberately opaque); paired with
        /// [`StdRng::from_state`] it restores the exact stream position.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from state words previously returned by
        /// [`StdRng::state`], continuing the stream exactly where it left
        /// off. An all-zero state (a xoshiro fixed point that
        /// [`SeedableRng::from_seed`] never produces) is nudged the same
        /// way `from_seed` nudges it.
        pub fn from_state(s: [u64; 4]) -> StdRng {
            if s == [0; 4] {
                return StdRng {
                    s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
                };
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (lane, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                *lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..57 {
            let _: u64 = rng.random();
        }
        let snapshot = rng.state();
        let tail: Vec<u64> = (0..100).map(|_| rng.random()).collect();
        let mut restored = StdRng::from_state(snapshot);
        let resumed: Vec<u64> = (0..100).map(|_| restored.random()).collect();
        assert_eq!(tail, resumed);
        // The zero fixed point is nudged, never frozen.
        let mut zeroed = StdRng::from_state([0; 4]);
        assert_ne!(zeroed.random::<u64>(), zeroed.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(1u8..=16);
            assert!((1..=16).contains(&y));
            let f = rng.random_range(0.0f64..50.0);
            assert!((0.0..50.0).contains(&f));
            let i = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn random_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&heads), "got {heads}");
    }

    #[test]
    fn full_u8_range_inclusive() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let _: u8 = rng.random_range(0u8..=255);
        }
    }

    #[test]
    fn fill_bytes_covers_slice() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
