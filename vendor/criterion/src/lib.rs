//! Offline drop-in replacement for the subset of the `criterion` API this
//! workspace's benches use: [`Criterion::bench_function`], benchmark
//! groups with throughput annotations, [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing is a simple calibrated loop over `std::time::Instant` — no
//! statistical analysis, plots, or saved baselines. Each benchmark prints
//! one line with the mean time per iteration (and derived throughput when
//! one was set). That is enough for the relative comparisons the bench
//! suite makes; the registry is unreachable from this container, so the
//! real crate cannot be used.

#![warn(missing_docs)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id distinguished from its siblings only by a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs and times the routine.
pub struct Bencher {
    mean_ns: f64,
}

/// Target wall-clock time spent measuring each benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(200);

impl Bencher {
    /// Times `routine`, first calibrating an iteration count that fills
    /// the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: grow the batch until it takes ~10ms.
        let mut batch = 1u64;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..batch {
                hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || batch >= 1 << 30 {
                break elapsed.as_secs_f64() / batch as f64;
            }
            batch = batch.saturating_mul(4);
        };
        let total = (MEASURE_TARGET.as_secs_f64() / per_iter.max(1e-9)) as u64;
        let iterations = total.clamp(1, 1 << 32);
        let start = Instant::now();
        for _ in 0..iterations {
            hint::black_box(routine());
        }
        self.mean_ns = start.elapsed().as_secs_f64() * 1e9 / iterations as f64;
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let rate = throughput.map(|t| {
        let per_second = |count: u64| count as f64 / (mean_ns / 1e9);
        match t {
            Throughput::Elements(n) => format!("  ({:.3e} elem/s)", per_second(n)),
            Throughput::Bytes(n) => {
                format!("  ({:.1} MiB/s)", per_second(n) / (1024.0 * 1024.0))
            }
        }
    });
    println!(
        "{name:<48} {:>12}/iter{}",
        format_ns(mean_ns),
        rate.unwrap_or_default()
    );
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { mean_ns: 0.0 };
        f(&mut bencher);
        report(name, bencher.mean_ns, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and an optional
/// throughput annotation.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rates for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { mean_ns: 0.0 };
        f(&mut bencher);
        report(
            &format!("{}/{id}", self.name),
            bencher.mean_ns,
            self.throughput,
        );
        self
    }

    /// Runs a named benchmark receiving a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { mean_ns: 0.0 };
        f(&mut bencher, input);
        report(
            &format!("{}/{id}", self.name),
            bencher.mean_ns,
            self.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions under one name for [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_a_routine() {
        let mut criterion = Criterion::default();
        let mut ran = false;
        criterion.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_supports_throughput_and_inputs() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
